//! Property tests for the interconnect simulator: route sanity, the
//! determinism contract of the zero-jitter engine, the physical lower
//! bound on every delivery, and the allocation-free fast paths against
//! their reference implementations — the precomputed route table vs
//! on-demand BFS, and the dense link-busy vector vs a `HashMap`-keyed
//! reference engine. The multi-tenant fabric rides the same reference:
//! any config at `load == 0` with fixed routing must be bit-for-bit
//! the pre-contention engine, and contended runs (background tenants,
//! seeded ECMP) must replay bitwise from `(seed, config)` alone.

use proptest::prelude::*;

use fpna_net::{
    Background, Delivery, FabricConfig, Hop, JitterModel, LinkSpec, NetSim, RouteSelect, RunStats,
    Topology,
};
use std::collections::HashMap;

/// Build a topology from one of the three builder families; `kind`
/// selects the family, `n1`/`n2` shape it.
fn make_topo(kind: usize, n1: usize, n2: usize) -> Topology {
    match kind % 3 {
        0 => Topology::flat_switch(n1, LinkSpec::new(500.0, 25.0)),
        1 => Topology::fat_tree(
            n1,
            n2.max(2),
            LinkSpec::new(500.0, 25.0),
            LinkSpec::new(1_500.0, 50.0),
        ),
        _ => Topology::hierarchical(
            (n1 - 1) % 4 + 1,
            n2.max(1),
            LinkSpec::new(200.0, 100.0),
            LinkSpec::new(500.0, 50.0),
            LinkSpec::new(5_000.0, 25.0),
        ),
    }
}

/// `(from, to, bytes, inject_ns)` message plans over `p` ranks.
fn messages(p: usize, rng_seed: u64, count: usize) -> Vec<(usize, usize, u64, f64)> {
    let mut rng = fpna_core::rng::SplitMix64::new(rng_seed);
    (0..count)
        .map(|_| {
            let from = rng.next_below(p as u64) as usize;
            let to = rng.next_below(p as u64) as usize;
            let bytes = rng.next_below(1 << 16);
            let at = (rng.next_below(10_000)) as f64;
            (from, to, bytes, at)
        })
        .collect()
}

/// Reference event engine: the pre-overhaul implementation — routes
/// recomputed by on-demand BFS ([`Topology::route`]), link busy state
/// in a `HashMap` keyed by the directed vertex pair, messages retained
/// for the whole run — with the identical event ordering (time, then
/// injection sequence) and identical per-hop arithmetic and jitter
/// stream. The fast engine must reproduce its deliveries bit for bit.
fn reference_run(
    topo: &Topology,
    jitter: JitterModel,
    plan: &[(usize, usize, u64, f64)],
) -> Vec<(u64, usize, usize, u64, u64)> {
    struct Ev {
        time: f64,
        seq: u64,
        msg: usize,
        hop: usize,
    }
    let routes: Vec<Vec<Hop>> = plan.iter().map(|&(f, t, _, _)| topo.route(f, t)).collect();
    let mut events: Vec<Ev> = Vec::new();
    let mut seq = 0u64;
    for (i, &(_, _, _, at)) in plan.iter().enumerate() {
        events.push(Ev { time: at, seq, msg: i, hop: 0 });
        seq += 1;
    }
    let mut busy: HashMap<(usize, usize), f64> = HashMap::new();
    let mut out = Vec::new();
    while !events.is_empty() {
        // Pop the (time, seq)-minimal event — same order the engine's
        // binary heap yields.
        let mut min = 0;
        for (i, e) in events.iter().enumerate().skip(1) {
            let lt = e
                .time
                .total_cmp(&events[min].time)
                .then_with(|| e.seq.cmp(&events[min].seq))
                .is_lt();
            if lt {
                min = i;
            }
        }
        let ev = events.remove(min);
        let (from, to, bytes, _) = plan[ev.msg];
        let route = &routes[ev.msg];
        if ev.hop == route.len() {
            out.push((ev.msg as u64, from, to, bytes, ev.time.to_bits()));
            continue;
        }
        let hop = route[ev.hop];
        let b = busy.entry((hop.from, hop.to)).or_insert(0.0);
        let start = ev.time.max(*b);
        let serialize = hop.link.ns_per_byte * bytes as f64;
        *b = start + serialize;
        let j = sample_jitter(&jitter, ev.msg as u64, ev.hop as u64, serialize + hop.link.latency_ns);
        events.push(Ev {
            time: start + serialize + hop.link.latency_ns + j,
            seq,
            msg: ev.msg,
            hop: ev.hop + 1,
        });
        seq += 1;
    }
    out
}

/// Everything a contended run observes, bit-exact: the delivery log
/// plus every [`RunStats`] field (floats by `to_bits`).
fn stats_fingerprint(stats: &RunStats) -> Vec<u64> {
    vec![
        stats.makespan_ns.to_bits(),
        stats.deliveries,
        stats.bytes_delivered,
        stats.hops_traversed,
        stats.wait_ns.to_bits(),
        stats.max_wait_ns.to_bits(),
        stats.contended_hops,
        u64::from(stats.max_queue_depth),
        stats.bg_deliveries,
        stats.bg_bytes_delivered,
        stats.bg_hops_traversed,
        stats.bg_dropped,
    ]
}

/// The engine's documented jitter stream, reproduced independently:
/// uniform in `[0, frac · hop_cost)` from a SplitMix64 keyed by
/// `(seed, message, hop)` with one warm-up draw.
fn sample_jitter(model: &JitterModel, msg: u64, hop: u64, hop_cost_ns: f64) -> f64 {
    if model.frac_of_cost == 0.0 {
        return 0.0;
    }
    let mut g = fpna_core::rng::SplitMix64::new(
        model.seed
            ^ msg.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ hop.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    );
    g.next_u64();
    model.frac_of_cost * hop_cost_ns * g.next_f64()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Routes connect the right endpoints, chain hop to hop, and never
    /// exceed the fabric diameter.
    #[test]
    fn routes_are_wellformed(
        kind in 0usize..3,
        n1 in 1usize..20,
        n2 in 1usize..7,
        pair in any::<u64>(),
    ) {
        let topo = make_topo(kind, n1, n2);
        let p = topo.ranks();
        let a = (pair % p as u64) as usize;
        let b = ((pair >> 32) % p as u64) as usize;
        let route = topo.route(a, b);
        if a == b {
            prop_assert!(route.is_empty());
        } else {
            prop_assert_eq!(route[0].from, topo.rank_vertex(a));
            prop_assert_eq!(route[route.len() - 1].to, topo.rank_vertex(b));
            for w in route.windows(2) {
                prop_assert_eq!(w[0].to, w[1].from, "hops must chain");
            }
            prop_assert!(route.len() <= topo.diameter_hops());
        }
    }

    /// The zero-jitter engine is a pure function of its inputs: same
    /// sends, bitwise-identical deliveries and stats — the property
    /// that makes "software-scheduled interconnect" a meaningful model.
    #[test]
    fn zero_jitter_is_deterministic(
        kind in 0usize..3,
        n1 in 1usize..20,
        n2 in 1usize..7,
        seed in any::<u64>(),
    ) {
        let topo = make_topo(kind, n1, n2);
        let plan = messages(topo.ranks(), seed, 24);
        let run = || {
            let mut sim = NetSim::new(&topo, JitterModel::none());
            for (i, &(from, to, bytes, at)) in plan.iter().enumerate() {
                sim.send_at(at, from, to, bytes, i as u64);
            }
            let mut log = Vec::new();
            let stats = sim.run(|_, d| log.push((d.tag, d.time.to_bits())));
            (log, stats.makespan_ns.to_bits(), stats.hops_traversed)
        };
        prop_assert_eq!(run(), run());
    }

    /// Jitter may delay and reorder, but never loses or invents
    /// messages, and no message beats the jitter-free uncontended
    /// physics: arrival ≥ injection + Σ(α + β·bytes) along its route.
    #[test]
    fn jitter_preserves_messages_and_respects_lower_bound(
        kind in 0usize..3,
        n1 in 1usize..20,
        n2 in 1usize..7,
        seed in any::<u64>(),
        frac in 0.0..1.5f64,
    ) {
        let topo = make_topo(kind, n1, n2);
        let plan = messages(topo.ranks(), seed ^ 0xABCD, 24);
        let mut sim = NetSim::new(&topo, JitterModel::uniform(frac, seed));
        for (i, &(from, to, bytes, at)) in plan.iter().enumerate() {
            sim.send_at(at, from, to, bytes, i as u64);
        }
        let mut seen = Vec::new();
        let stats = sim.run(|_, d| seen.push(d));
        prop_assert_eq!(seen.len(), plan.len());
        prop_assert_eq!(stats.deliveries as usize, plan.len());
        let mut max_time = 0.0f64;
        for d in &seen {
            let (from, to, bytes, at) = plan[d.tag as usize];
            prop_assert_eq!((d.from, d.to, d.bytes), (from, to, bytes));
            let floor = at + topo.path_cost_ns(from, to, bytes);
            prop_assert!(
                d.time >= floor - 1e-9,
                "message {} arrived at {} before its physical floor {}",
                d.tag, d.time, floor
            );
            max_time = max_time.max(d.time);
        }
        prop_assert_eq!(stats.makespan_ns.to_bits(), max_time.to_bits());
    }

    /// The precomputed route table (what the engine rides) is hop-for-
    /// hop identical to the on-demand BFS for **every** `(from, to)`
    /// pair in all three topology families.
    #[test]
    fn precomputed_route_table_matches_on_demand_bfs(
        kind in 0usize..3,
        n1 in 1usize..20,
        n2 in 1usize..7,
    ) {
        let topo = make_topo(kind, n1, n2);
        for a in 0..topo.ranks() {
            for b in 0..topo.ranks() {
                let on_demand = topo.route(a, b);
                prop_assert_eq!(
                    on_demand.as_slice(),
                    topo.route_hops(a, b),
                    "{} {}→{}", topo.name(), a, b
                );
            }
        }
    }

    /// The dense link-busy vector + recycled message slots reproduce
    /// the `HashMap`-busy-state reference engine bit for bit — message
    /// identity, payload metadata and every delivery timestamp — on
    /// random traffic, jittered and jitter-free.
    #[test]
    fn dense_link_busy_matches_hashmap_reference(
        kind in 0usize..3,
        n1 in 1usize..20,
        n2 in 1usize..7,
        seed in any::<u64>(),
        frac in prop_oneof![Just(0.0f64), 0.01..1.2f64],
    ) {
        let topo = make_topo(kind, n1, n2);
        let plan = messages(topo.ranks(), seed ^ 0x7777, 24);
        let jitter = if frac == 0.0 {
            JitterModel::none()
        } else {
            JitterModel::uniform(frac, seed)
        };
        let mut sim = NetSim::new(&topo, jitter);
        for &(from, to, bytes, at) in &plan {
            sim.send_at(at, from, to, bytes, 0);
        }
        let mut got: Vec<(u64, usize, usize, u64, u64)> = Vec::new();
        sim.run(|_, d: Delivery| got.push((d.msg, d.from, d.to, d.bytes, d.time.to_bits())));
        let want = reference_run(&topo, jitter, &plan);
        prop_assert_eq!(got, want);
    }

    /// **Any** fabric config with the tenants silenced (`load == 0`)
    /// and fixed routing is bit-for-bit the pre-contention engine:
    /// same deliveries and legacy stats as `NetSim::new`, and the same
    /// delivery log as the retained `HashMap`-reference engine. The
    /// multi-tenant machinery must be a strict no-op until switched on.
    #[test]
    fn quiet_fixed_fabric_is_bitwise_the_pr5_reference(
        kind in 0usize..3,
        n1 in 2usize..20,
        n2 in 1usize..7,
        seed in any::<u64>(),
        frac in prop_oneof![Just(0.0f64), 0.01..1.2f64],
        bg_seed in any::<u64>(),
        bg_bytes in 1u64..(1 << 20),
        bg_burst in 1u32..64,
    ) {
        let topo = make_topo(kind, n1, n2);
        let plan = messages(topo.ranks(), seed ^ 0x51E7, 24);
        let jitter = if frac == 0.0 {
            JitterModel::none()
        } else {
            JitterModel::uniform(frac, seed)
        };
        let fabric = FabricConfig {
            route_select: RouteSelect::Fixed,
            background: Background {
                load: 0.0,
                seed: bg_seed,
                bytes: bg_bytes,
                burst: bg_burst,
                ..Background::off()
            },
        };
        let drive = |mut sim: NetSim<'_>| {
            for (i, &(from, to, bytes, at)) in plan.iter().enumerate() {
                sim.send_at(at, from, to, bytes, i as u64);
            }
            let mut log: Vec<(u64, u64, usize, usize, u64, u64)> = Vec::new();
            let stats =
                sim.run(|_, d: Delivery| log.push((d.msg, d.tag, d.from, d.to, d.bytes, d.time.to_bits())));
            (log, stats_fingerprint(&stats))
        };
        let quiet = drive(NetSim::with_fabric(&topo, jitter, fabric));
        let plain = drive(NetSim::new(&topo, jitter));
        prop_assert_eq!(&quiet, &plain, "load=0 fabric must equal the plain engine");
        let want = reference_run(&topo, jitter, &plan);
        let got: Vec<(u64, usize, usize, u64, u64)> =
            quiet.0.iter().map(|&(m, _, f, t, b, ts)| (m, f, t, b, ts)).collect();
        prop_assert_eq!(got, want, "load=0 fabric must equal the reference engine");
    }

    /// The calendar queue is a drop-in replacement for the binary
    /// heap: across every topology family, offered load in
    /// {0, 0.5, 0.8}, and both route modes, the two queue
    /// implementations must produce the identical delivery log (id,
    /// tag, endpoints, payload, and timestamp bits) **and** the
    /// identical stats fingerprint. Pop order is the total order
    /// `(time, seq)` either way; this pins that the bucket/overflow
    /// machinery never reorders ties or loses events.
    #[test]
    fn calendar_queue_is_bitwise_the_heap(
        kind in 0usize..3,
        n1 in 2usize..20,
        n2 in 1usize..7,
        seed in any::<u64>(),
        frac in prop_oneof![Just(0.0f64), 0.01..1.2f64],
        load in prop_oneof![Just(0.0f64), Just(0.5f64), Just(0.8f64)],
        ecmp in any::<bool>(),
    ) {
        use fpna_net::QueueImpl;
        let topo = make_topo(kind, n1, n2);
        let plan = messages(topo.ranks(), seed ^ 0xCA1E, 24);
        let jitter = if frac == 0.0 {
            JitterModel::none()
        } else {
            JitterModel::uniform(frac, seed)
        };
        let fabric = FabricConfig {
            route_select: if ecmp {
                RouteSelect::SeededEcmp { seed: seed ^ 0xEC }
            } else {
                RouteSelect::Fixed
            },
            background: if load > 0.0 {
                Background::with_load(load, seed ^ 0xB6)
            } else {
                Background::off()
            },
        };
        let drive = |queue: QueueImpl| {
            let mut sim = NetSim::with_queue(&topo, jitter, fabric, queue);
            for (i, &(from, to, bytes, at)) in plan.iter().enumerate() {
                sim.send_at(at, from, to, bytes, i as u64);
            }
            let mut log: Vec<(u64, u64, usize, usize, u64, u64)> = Vec::new();
            let stats = sim
                .run(|_, d: Delivery| log.push((d.msg, d.tag, d.from, d.to, d.bytes, d.time.to_bits())));
            (log, stats_fingerprint(&stats))
        };
        let cal = drive(QueueImpl::Calendar);
        let heap = drive(QueueImpl::Heap);
        prop_assert_eq!(&cal, &heap, "calendar and heap engines must be bitwise identical");
        prop_assert_eq!(cal.0.len(), plan.len());
    }

    /// Background-flow schedules and seeded ECMP route draws are pure
    /// functions of `(seed, config)`: replaying a contended run — any
    /// offered load, either route mode, multi-spine or not — reproduces
    /// every foreground delivery **and every stats counter** bit for
    /// bit, including the background/drop tallies.
    #[test]
    fn contended_runs_replay_bitwise_from_their_seeds(
        p in 4usize..18,
        spines in 1usize..5,
        seed in any::<u64>(),
        frac in prop_oneof![Just(0.0f64), 0.01..0.8f64],
        load in 0.05..1.0f64,
        ecmp in any::<bool>(),
    ) {
        let topo = Topology::fat_tree_spines(
            p,
            4,
            spines,
            LinkSpec::new(500.0, 25.0),
            LinkSpec::new(1_500.0, 50.0),
        );
        let plan = messages(p, seed ^ 0xBEEF, 24);
        let jitter = if frac == 0.0 {
            JitterModel::none()
        } else {
            JitterModel::uniform(frac, seed)
        };
        let fabric = FabricConfig {
            route_select: if ecmp {
                RouteSelect::SeededEcmp { seed: seed ^ 0xEC }
            } else {
                RouteSelect::Fixed
            },
            background: Background::with_load(load, seed ^ 0xB6),
        };
        let run = || {
            let mut sim = NetSim::with_fabric(&topo, jitter, fabric);
            for (i, &(from, to, bytes, at)) in plan.iter().enumerate() {
                sim.send_at(at, from, to, bytes, i as u64);
            }
            let mut log: Vec<(u64, u64, u64)> = Vec::new();
            let stats = sim.run(|_, d: Delivery| log.push((d.msg, d.tag, d.time.to_bits())));
            (log, stats_fingerprint(&stats))
        };
        let first = run();
        prop_assert_eq!(
            first.0.len(),
            plan.len(),
            "tenants may delay but never eat a foreground message"
        );
        prop_assert_eq!(&first, &run(), "contended run must replay bitwise");
    }
}
