//! Property tests for the interconnect simulator: route sanity, the
//! determinism contract of the zero-jitter engine, and the physical
//! lower bound on every delivery.

use proptest::prelude::*;

use fpna_net::{JitterModel, LinkSpec, NetSim, Topology};

/// Build a topology from one of the three builder families; `kind`
/// selects the family, `n1`/`n2` shape it.
fn make_topo(kind: usize, n1: usize, n2: usize) -> Topology {
    match kind % 3 {
        0 => Topology::flat_switch(n1, LinkSpec::new(500.0, 25.0)),
        1 => Topology::fat_tree(
            n1,
            n2.max(2),
            LinkSpec::new(500.0, 25.0),
            LinkSpec::new(1_500.0, 50.0),
        ),
        _ => Topology::hierarchical(
            (n1 - 1) % 4 + 1,
            n2.max(1),
            LinkSpec::new(200.0, 100.0),
            LinkSpec::new(500.0, 50.0),
            LinkSpec::new(5_000.0, 25.0),
        ),
    }
}

/// `(from, to, bytes, inject_ns)` message plans over `p` ranks.
fn messages(p: usize, rng_seed: u64, count: usize) -> Vec<(usize, usize, u64, f64)> {
    let mut rng = fpna_core::rng::SplitMix64::new(rng_seed);
    (0..count)
        .map(|_| {
            let from = rng.next_below(p as u64) as usize;
            let to = rng.next_below(p as u64) as usize;
            let bytes = rng.next_below(1 << 16);
            let at = (rng.next_below(10_000)) as f64;
            (from, to, bytes, at)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Routes connect the right endpoints, chain hop to hop, and never
    /// exceed the fabric diameter.
    #[test]
    fn routes_are_wellformed(
        kind in 0usize..3,
        n1 in 1usize..20,
        n2 in 1usize..7,
        pair in any::<u64>(),
    ) {
        let topo = make_topo(kind, n1, n2);
        let p = topo.ranks();
        let a = (pair % p as u64) as usize;
        let b = ((pair >> 32) % p as u64) as usize;
        let route = topo.route(a, b);
        if a == b {
            prop_assert!(route.is_empty());
        } else {
            prop_assert_eq!(route[0].from, topo.rank_vertex(a));
            prop_assert_eq!(route[route.len() - 1].to, topo.rank_vertex(b));
            for w in route.windows(2) {
                prop_assert_eq!(w[0].to, w[1].from, "hops must chain");
            }
            prop_assert!(route.len() <= topo.diameter_hops());
        }
    }

    /// The zero-jitter engine is a pure function of its inputs: same
    /// sends, bitwise-identical deliveries and stats — the property
    /// that makes "software-scheduled interconnect" a meaningful model.
    #[test]
    fn zero_jitter_is_deterministic(
        kind in 0usize..3,
        n1 in 1usize..20,
        n2 in 1usize..7,
        seed in any::<u64>(),
    ) {
        let topo = make_topo(kind, n1, n2);
        let plan = messages(topo.ranks(), seed, 24);
        let run = || {
            let mut sim = NetSim::new(&topo, JitterModel::none());
            for (i, &(from, to, bytes, at)) in plan.iter().enumerate() {
                sim.send_at(at, from, to, bytes, i as u64);
            }
            let mut log = Vec::new();
            let stats = sim.run(|_, d| log.push((d.tag, d.time.to_bits())));
            (log, stats.makespan_ns.to_bits(), stats.hops_traversed)
        };
        prop_assert_eq!(run(), run());
    }

    /// Jitter may delay and reorder, but never loses or invents
    /// messages, and no message beats the jitter-free uncontended
    /// physics: arrival ≥ injection + Σ(α + β·bytes) along its route.
    #[test]
    fn jitter_preserves_messages_and_respects_lower_bound(
        kind in 0usize..3,
        n1 in 1usize..20,
        n2 in 1usize..7,
        seed in any::<u64>(),
        frac in 0.0..1.5f64,
    ) {
        let topo = make_topo(kind, n1, n2);
        let plan = messages(topo.ranks(), seed ^ 0xABCD, 24);
        let mut sim = NetSim::new(&topo, JitterModel::uniform(frac, seed));
        for (i, &(from, to, bytes, at)) in plan.iter().enumerate() {
            sim.send_at(at, from, to, bytes, i as u64);
        }
        let mut seen = Vec::new();
        let stats = sim.run(|_, d| seen.push(d));
        prop_assert_eq!(seen.len(), plan.len());
        prop_assert_eq!(stats.deliveries as usize, plan.len());
        let mut max_time = 0.0f64;
        for d in &seen {
            let (from, to, bytes, at) = plan[d.tag as usize];
            prop_assert_eq!((d.from, d.to, d.bytes), (from, to, bytes));
            let floor = at + topo.path_cost_ns(from, to, bytes);
            prop_assert!(
                d.time >= floor - 1e-9,
                "message {} arrived at {} before its physical floor {}",
                d.tag, d.time, floor
            );
            max_time = max_time.max(d.time);
        }
        prop_assert_eq!(stats.makespan_ns.to_bits(), max_time.to_bits());
    }
}
