//! # fpna-net
//!
//! A seeded discrete-event interconnect simulator. This crate gives
//! the suite a *network* in which message-arrival order — and hence
//! the floating-point combine order of a distributed reduction —
//! **emerges from timing** instead of being injected by a shuffle.
//!
//! The paper's conclusion names this exact frontier: *"inter-chip and
//! inter-node communication, such as with MPI, lead\[s\] to more runtime
//! variation"*, while a software-scheduled interconnect (the LPU
//! multiprocessor) removes it. The pieces:
//!
//! * [`topology`] — fabric descriptions: a flat crossbar
//!   ([`Topology::flat_switch`]), a two-level fat tree
//!   ([`Topology::fat_tree`]) and a node/NIC/switch hierarchy with
//!   distinct intra-node vs inter-node links
//!   ([`Topology::hierarchical`]), all parameterised by `α + β·bytes`
//!   [`LinkSpec`]s;
//! * [`engine`] — the event engine: store-and-forward hops, per-link
//!   serialization, and a seeded [`JitterModel`]. Zero jitter is the
//!   software-scheduled fabric (bit-for-bit replayable); nonzero
//!   jitter is MPI on a busy cluster. [`FabricConfig`] layers on
//!   multi-tenant *contention*: seeded [`Background`] tenant traffic
//!   that reorders foreground arrivals through link queueing, and
//!   seeded ECMP route choice ([`RouteSelect`]) over the equal-cost
//!   paths of a multi-spine fat tree
//!   ([`Topology::fat_tree_spines`]);
//! * [`cost`] — analytic α–β allreduce cost models, including the
//!   bandwidth-inflation price of shipping exact accumulators
//!   (the network half of the paper's "cost of reproducibility");
//! * [`report`] — seed-sweep summaries that feed
//!   `fpna_core::metrics` / `fpna_core::harness`, so network
//!   experiments report the same `Vermv`/`Vc` vocabulary as the rest
//!   of the suite.
//!
//! `fpna-collectives` builds its timing-driven allreduce on these
//! primitives; `fpna-bench`'s `table9` binary sweeps rank count ×
//! topology × jitter into the variability-vs-cost table.
//!
//! ```
//! use fpna_net::{JitterModel, LinkSpec, NetSim, Topology};
//!
//! // 8 ranks on one switch; rank 1..8 all message rank 0.
//! let topo = Topology::flat_switch(8, LinkSpec::new(500.0, 12.0));
//! let mut sim = NetSim::new(&topo, JitterModel::uniform(0.4, 7));
//! for r in 1..8 {
//!     sim.send_at(0.0, r, 0, 1024, r as u64);
//! }
//! let mut arrival_order = Vec::new();
//! let stats = sim.run(|_, d| arrival_order.push(d.from));
//! assert_eq!(arrival_order.len(), 7);
//! assert!(stats.makespan_ns > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod engine;
pub mod report;
pub mod topology;

pub use cost::CostModel;
pub use engine::{
    Background, Delivery, FabricConfig, FlowSizes, JitterModel, LinkStats, NetSim, QueueImpl,
    RouteSelect, RunStats,
};
pub use report::{sweep_seeds, SeedSweep};
pub use topology::{Hop, LinkSpec, NodeKind, Topology};
