//! Interconnect topology descriptions.
//!
//! A [`Topology`] is an undirected graph of [`NodeKind`] vertices
//! (rank endpoints, NICs, switches) whose edges carry a [`LinkSpec`]
//! — the `α + β·bytes` cost model of the classic LogP/Hockney family.
//! Three builders cover the shapes the paper's future-work section
//! names:
//!
//! * [`Topology::flat_switch`] — every rank one hop from a single
//!   crossbar; the shallowest interesting fabric (depth 1);
//! * [`Topology::fat_tree`] — ranks under edge switches under one core
//!   switch (a folded two-level Clos; depth 2);
//! * [`Topology::hierarchical`] — the cluster reality: ranks share an
//!   intra-node switch, leave through a NIC, and cross a top-of-rack
//!   switch, with distinct intra-node vs inter-node latency and
//!   bandwidth (depth 3).
//!
//! Routes are shortest paths computed by BFS. The three builders above
//! produce tree-shaped fabrics, so their shortest paths are unique;
//! [`Topology::fat_tree_spines`] generalises the fat tree to several
//! core (spine) switches, giving every cross-group rank pair `spines`
//! **equal-cost paths** — the substrate for the engine's seeded
//! ECMP/adaptive routing ([`crate::engine::RouteSelect`]). All timing
//! variation stays owned by the [`engine`](crate::engine): the seeded
//! jitter model, seeded route choice, and seeded background traffic.
//!
//! Construction is two-phase under the hood: the builders add vertices
//! and links, then `finalize` assigns every **directed** link a dense
//! id (`0..`[`Topology::num_links`], the index the engine uses for its
//! busy-state vector) and precomputes every rank-pair route into one
//! shared hop arena. [`Topology::route_hops`] returns a borrowed
//! `&[Hop]` slice from that arena — the allocation-free lookup the
//! event engine rides — while [`Topology::route`] recomputes the same
//! path by on-demand BFS (the reference implementation the property
//! tests diff against the table). Where several equal-cost shortest
//! paths exist, `finalize` enumerates them all:
//! [`Topology::route_count`] reports how many and
//! [`Topology::route_hops_nth`] returns the `k`-th (index 0 is always
//! the canonical BFS route that [`Topology::route_hops`] returns, so
//! fixed routing is unchanged by the enumeration).

/// Cost model for one link: a message of `b` bytes occupies the link
/// for `b · ns_per_byte` (serialization, β) and then lands after
/// `latency_ns` (propagation, α) plus any jitter the engine injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Propagation latency α in nanoseconds.
    pub latency_ns: f64,
    /// Inverse bandwidth β in nanoseconds per byte.
    pub ns_per_byte: f64,
}

impl LinkSpec {
    /// A link with `latency_ns` of latency and `gb_per_s` gigabytes per
    /// second of bandwidth.
    pub fn new(latency_ns: f64, gb_per_s: f64) -> Self {
        assert!(latency_ns >= 0.0 && gb_per_s > 0.0, "invalid link spec");
        LinkSpec {
            latency_ns,
            ns_per_byte: 1.0 / gb_per_s,
        }
    }

    /// Deterministic traversal cost for `bytes` (no jitter, no queuing).
    #[inline]
    pub fn cost_ns(&self, bytes: u64) -> f64 {
        self.latency_ns + self.ns_per_byte * bytes as f64
    }
}

/// What a vertex in the fabric is. Only [`NodeKind::Rank`] vertices
/// source or sink traffic; NICs and switches forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A compute endpoint holding the given MPI-style rank id.
    Rank(usize),
    /// A network interface between a node-local fabric and the
    /// inter-node fabric.
    Nic,
    /// A crossbar switch.
    Switch,
}

/// One hop of a route: the directed link `(from, to)`, its spec, and
/// the link's dense id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// Source vertex index.
    pub from: usize,
    /// Destination vertex index.
    pub to: usize,
    /// Cost model of the traversed link.
    pub link: LinkSpec,
    /// Dense id of the directed link `(from, to)` in
    /// `0..`[`Topology::num_links`] — the index the engine uses for
    /// its link-busy vector (each undirected edge contributes two
    /// directed ids).
    pub link_id: u32,
}

/// An interconnect: vertices, links, and the rank→vertex mapping.
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    nodes: Vec<NodeKind>,
    /// Adjacency: `adj[v]` lists `(neighbour, link spec, directed link id)`.
    adj: Vec<Vec<(usize, LinkSpec, u32)>>,
    /// `rank_vertex[r]` is the vertex index of rank `r`.
    rank_vertex: Vec<usize>,
    /// Number of directed links (two per undirected edge).
    num_links: usize,
    /// `link_ends[link_id]` is the `(from, to)` vertex pair of the
    /// directed link — the reverse of [`Hop::link_id`], used by
    /// observability surfaces (trace lane names, link-stats tables).
    link_ends: Vec<(u32, u32)>,
    /// Shared arena of precomputed route hops; rank-pair routes are
    /// contiguous slices of this vector.
    route_arena: Vec<Hop>,
    /// `(offset, len)` into `route_arena` for the route `from → to`,
    /// stored at `from · ranks + to`.
    route_index: Vec<(u32, u32)>,
    /// Per rank pair (same layout as `route_index`): `u32::MAX` when
    /// the shortest path is unique, else an index into `ecmp_groups`.
    ecmp_index: Vec<u32>,
    /// `(offset, count)` into `ecmp_slots` for a multi-path pair.
    ecmp_groups: Vec<(u32, u32)>,
    /// `(offset, len)` into `route_arena` per equal-cost route; slot 0
    /// of every group is the canonical BFS route.
    ecmp_slots: Vec<(u32, u32)>,
    /// Fabric group of each rank (see [`Topology::group_of`]).
    rank_group: Vec<u32>,
    /// CSR offsets into `group_members`: group `g` owns
    /// `group_members[group_offsets[g] .. group_offsets[g + 1]]`.
    group_offsets: Vec<u32>,
    /// Rank ids, ascending within each group; groups ordered by their
    /// smallest member rank.
    group_members: Vec<usize>,
    /// Per **directed** link id: `true` when both endpoints are
    /// forwarding hardware (switch↔switch, switch↔NIC) — the
    /// NIC/spine crossings a topology-aware placement tries to avoid.
    cross_group: Vec<bool>,
}

impl Topology {
    fn empty(name: impl Into<String>) -> Self {
        Topology {
            name: name.into(),
            nodes: Vec::new(),
            adj: Vec::new(),
            rank_vertex: Vec::new(),
            num_links: 0,
            link_ends: Vec::new(),
            route_arena: Vec::new(),
            route_index: Vec::new(),
            ecmp_index: Vec::new(),
            ecmp_groups: Vec::new(),
            ecmp_slots: Vec::new(),
            rank_group: Vec::new(),
            group_offsets: Vec::new(),
            group_members: Vec::new(),
            cross_group: Vec::new(),
        }
    }

    fn add_node(&mut self, kind: NodeKind) -> usize {
        let id = self.nodes.len();
        self.nodes.push(kind);
        self.adj.push(Vec::new());
        if let NodeKind::Rank(r) = kind {
            assert_eq!(r, self.rank_vertex.len(), "ranks must be added in order");
            self.rank_vertex.push(id);
        }
        id
    }

    fn link(&mut self, a: usize, b: usize, spec: LinkSpec) {
        let id = self.num_links as u32;
        self.num_links += 2;
        self.adj[a].push((b, spec, id));
        self.adj[b].push((a, spec, id + 1));
        self.link_ends.push((a as u32, b as u32));
        self.link_ends.push((b as u32, a as u32));
    }

    /// Precompute the dense route table: one BFS per source rank (the
    /// discovered canonical paths match the on-demand
    /// [`Topology::route`] exactly), with all hops packed into one
    /// arena so [`Topology::route_hops`] is a slice lookup — then
    /// enumerate every *equal-cost* shortest path per rank pair for
    /// the engine's seeded ECMP routing. Called by every builder as
    /// its final step.
    fn finalize(&mut self) {
        let p = self.rank_vertex.len();
        self.route_index = Vec::with_capacity(p * p);
        let mut scratch = Vec::new();
        for from in 0..p {
            let src = self.rank_vertex[from];
            // Full BFS from `src`; prev pointers are identical to the
            // early-exit BFS in `route` (continuing a BFS never rewrites
            // an already-set predecessor).
            let mut prev: Vec<Option<(usize, LinkSpec, u32)>> = vec![None; self.nodes.len()];
            let mut seen = vec![false; self.nodes.len()];
            let mut queue = std::collections::VecDeque::from([src]);
            seen[src] = true;
            while let Some(v) = queue.pop_front() {
                for &(w, spec, id) in &self.adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        prev[w] = Some((v, spec, id));
                        queue.push_back(w);
                    }
                }
            }
            for to in 0..p {
                let dst = self.rank_vertex[to];
                if dst == src {
                    self.route_index.push((self.route_arena.len() as u32, 0));
                    continue;
                }
                scratch.clear();
                let mut v = dst;
                while let Some((u, spec, id)) = prev[v] {
                    scratch.push(Hop { from: u, to: v, link: spec, link_id: id });
                    v = u;
                }
                assert!(v == src, "no route between ranks {from} and {to}");
                let offset = self.route_arena.len() as u32;
                self.route_arena.extend(scratch.iter().rev());
                self.route_index.push((offset, scratch.len() as u32));
            }
        }
        self.enumerate_equal_cost_routes();
        self.classify_groups();
    }

    /// Classify links and group ranks by physical proximity. A
    /// directed link is *cross-group* when both endpoints are
    /// forwarding hardware (switch↔switch, switch↔NIC, NIC↔switch):
    /// those are the NIC/spine crossings topology-aware placement
    /// tries to keep traffic off. Two ranks share a *fabric group*
    /// when they are connected by links that are **not** cross-group —
    /// flat switch: one group; fat tree: one group per edge switch;
    /// hierarchical: one group per compute node. Groups are numbered
    /// by their smallest member rank.
    fn classify_groups(&mut self) {
        self.cross_group = (0..self.num_links)
            .map(|id| {
                let (a, b) = self.link_ends[id];
                !matches!(self.nodes[a as usize], NodeKind::Rank(_))
                    && !matches!(self.nodes[b as usize], NodeKind::Rank(_))
            })
            .collect();
        // Flood-fill vertex components over non-cross links, then
        // number the rank-bearing components by smallest member rank.
        let mut comp = vec![u32::MAX; self.nodes.len()];
        let mut next = 0u32;
        for start in 0..self.nodes.len() {
            if comp[start] != u32::MAX {
                continue;
            }
            comp[start] = next;
            next += 1;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                for &(w, _, id) in &self.adj[v] {
                    if !self.cross_group[id as usize] && comp[w] == u32::MAX {
                        comp[w] = comp[start];
                        queue.push_back(w);
                    }
                }
            }
        }
        let p = self.rank_vertex.len();
        self.rank_group = vec![u32::MAX; p];
        let mut group_of_comp = vec![u32::MAX; next as usize];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for r in 0..p {
            let c = comp[self.rank_vertex[r]] as usize;
            if group_of_comp[c] == u32::MAX {
                group_of_comp[c] = groups.len() as u32;
                groups.push(Vec::new());
            }
            self.rank_group[r] = group_of_comp[c];
            groups[group_of_comp[c] as usize].push(r);
        }
        self.group_offsets = vec![0];
        for members in &groups {
            self.group_members.extend_from_slice(members);
            self.group_offsets.push(self.group_members.len() as u32);
        }
    }

    /// BFS hop distances from vertex `src` to every vertex.
    fn bfs_dist(&self, src: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.nodes.len()];
        dist[src] = 0;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(v) = queue.pop_front() {
            for &(w, _, _) in &self.adj[v] {
                if dist[w] == u32::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Enumerate every shortest path for every rank pair. Pairs with a
    /// unique path (all of flat/hierarchical, and intra-group fat-tree
    /// pairs) stay implicit; multi-path pairs get an `ecmp_groups`
    /// entry whose slot 0 is the canonical BFS route — so
    /// [`Topology::route_hops`] (and any `Fixed`-routing consumer) is
    /// untouched by the enumeration, and the alternates live after it.
    fn enumerate_equal_cost_routes(&mut self) {
        let p = self.rank_vertex.len();
        self.ecmp_index = vec![u32::MAX; p * p];
        let dists: Vec<Vec<u32>> = (0..p).map(|r| self.bfs_dist(self.rank_vertex[r])).collect();
        let mut paths: Vec<Vec<Hop>> = Vec::new();
        let mut prefix: Vec<Hop> = Vec::new();
        for from in 0..p {
            for to in 0..p {
                if from == to {
                    continue;
                }
                let (src, dst) = (self.rank_vertex[from], self.rank_vertex[to]);
                paths.clear();
                prefix.clear();
                dfs_shortest_paths(
                    &self.adj,
                    &dists[from],
                    &dists[to],
                    dists[from][dst],
                    src,
                    dst,
                    &mut prefix,
                    &mut paths,
                );
                if paths.len() <= 1 {
                    continue;
                }
                // Slot 0 is the canonical route already in the arena;
                // every other enumerated path is appended after it.
                let canonical = self.route_index[from * p + to];
                let canonical_ids: Vec<u32> = self.route_arena
                    [canonical.0 as usize..(canonical.0 + canonical.1) as usize]
                    .iter()
                    .map(|h| h.link_id)
                    .collect();
                let group_offset = self.ecmp_slots.len() as u32;
                self.ecmp_slots.push(canonical);
                for path in &paths {
                    if path.iter().map(|h| h.link_id).eq(canonical_ids.iter().copied()) {
                        continue;
                    }
                    let offset = self.route_arena.len() as u32;
                    self.route_arena.extend_from_slice(path);
                    self.ecmp_slots.push((offset, path.len() as u32));
                }
                self.ecmp_index[from * p + to] = self.ecmp_groups.len() as u32;
                self.ecmp_groups
                    .push((group_offset, (self.ecmp_slots.len() as u32) - group_offset));
            }
        }
    }

    /// `p` ranks hanging off one crossbar switch — depth 1.
    ///
    /// # Panics
    ///
    /// Panics when `p == 0`.
    pub fn flat_switch(p: usize, link: LinkSpec) -> Self {
        assert!(p > 0, "flat_switch needs at least one rank");
        let mut t = Topology::empty(format!("flat-switch(p={p})"));
        let sw = t.add_node(NodeKind::Switch);
        for r in 0..p {
            let v = t.add_node(NodeKind::Rank(r));
            t.link(v, sw, link);
        }
        t.finalize();
        t
    }

    /// Two-level folded-Clos fat tree — depth 2: `radix` ranks per edge
    /// switch over `edge` links; edge switches meet at one core switch
    /// over `core` links. A single-spine [`Topology::fat_tree_spines`]
    /// (routes are unique, no ECMP).
    ///
    /// # Panics
    ///
    /// Panics when `p == 0` or `radix < 2`.
    pub fn fat_tree(p: usize, radix: usize, edge: LinkSpec, core: LinkSpec) -> Self {
        Self::fat_tree_spines(p, radix, 1, edge, core)
    }

    /// Two-level folded Clos with `spines` core switches: every edge
    /// switch uplinks to every spine over `core` links, so each
    /// cross-group rank pair has exactly `spines` equal-cost four-hop
    /// paths — the substrate for seeded ECMP routing
    /// ([`crate::engine::RouteSelect::SeededEcmp`]). `spines == 1` is
    /// byte-for-byte the classic [`Topology::fat_tree`] (same name,
    /// same vertex and link-id assignment order).
    ///
    /// # Panics
    ///
    /// Panics when `p == 0`, `radix < 2`, or `spines` is outside
    /// `1..=64`.
    pub fn fat_tree_spines(
        p: usize,
        radix: usize,
        spines: usize,
        edge: LinkSpec,
        core: LinkSpec,
    ) -> Self {
        assert!(p > 0, "fat_tree needs at least one rank");
        assert!(radix >= 2, "fat_tree radix must be at least 2");
        assert!(
            (1..=64).contains(&spines),
            "fat_tree spine count must be in 1..=64"
        );
        let name = if spines == 1 {
            format!("fat-tree(p={p},radix={radix})")
        } else {
            format!("fat-tree(p={p},radix={radix},spines={spines})")
        };
        let mut t = Topology::empty(name);
        let core_sws: Vec<usize> = (0..spines).map(|_| t.add_node(NodeKind::Switch)).collect();
        let groups = p.div_ceil(radix);
        for g in 0..groups {
            let edge_sw = t.add_node(NodeKind::Switch);
            for &core_sw in &core_sws {
                t.link(edge_sw, core_sw, core);
            }
            for r in (g * radix)..(((g + 1) * radix).min(p)) {
                let v = t.add_node(NodeKind::Rank(r));
                t.link(v, edge_sw, edge);
            }
        }
        t.finalize();
        t
    }

    /// Cluster-shaped fabric — depth 3: `nodes` compute nodes of
    /// `ranks_per_node` ranks each. Ranks attach to a node-local switch
    /// over `intra` links; each node switch reaches its NIC over `nic`
    /// links; NICs meet at a top switch over `inter` links.
    ///
    /// Rank ids are node-major: node `n` hosts ranks
    /// `n·ranks_per_node .. (n+1)·ranks_per_node`.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn hierarchical(
        nodes: usize,
        ranks_per_node: usize,
        intra: LinkSpec,
        nic: LinkSpec,
        inter: LinkSpec,
    ) -> Self {
        assert!(nodes > 0 && ranks_per_node > 0, "empty hierarchy");
        let mut t = Topology::empty(format!("hierarchical(nodes={nodes},rpn={ranks_per_node})"));
        let top = t.add_node(NodeKind::Switch);
        for _ in 0..nodes {
            let node_sw = t.add_node(NodeKind::Switch);
            let node_nic = t.add_node(NodeKind::Nic);
            t.link(node_sw, node_nic, nic);
            t.link(node_nic, top, inter);
            for _ in 0..ranks_per_node {
                let r = t.rank_vertex.len();
                let v = t.add_node(NodeKind::Rank(r));
                t.link(v, node_sw, intra);
            }
        }
        t.finalize();
        t
    }

    /// [`Topology::hierarchical`] with **cyclic** rank placement: rank
    /// `r` lives on node `r % nodes` (the round-robin layout an MPI
    /// scheduler produces under `--map-by node`), so consecutive rank
    /// ids sit on *different* nodes. The fabric is identical to the
    /// node-major builder; only the rank→node assignment changes —
    /// which is exactly the situation where a topology-oblivious ring
    /// crosses the NIC on every hop and
    /// [`Topology::fabric_ring_order`] recovers the node-contiguous
    /// order.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn hierarchical_cyclic(
        nodes: usize,
        ranks_per_node: usize,
        intra: LinkSpec,
        nic: LinkSpec,
        inter: LinkSpec,
    ) -> Self {
        assert!(nodes > 0 && ranks_per_node > 0, "empty hierarchy");
        let mut t = Topology::empty(format!(
            "hierarchical-cyclic(nodes={nodes},rpn={ranks_per_node})"
        ));
        let top = t.add_node(NodeKind::Switch);
        let mut node_sws = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let node_sw = t.add_node(NodeKind::Switch);
            let node_nic = t.add_node(NodeKind::Nic);
            t.link(node_sw, node_nic, nic);
            t.link(node_nic, top, inter);
            node_sws.push(node_sw);
        }
        for r in 0..nodes * ranks_per_node {
            let v = t.add_node(NodeKind::Rank(r));
            t.link(v, node_sws[r % nodes], intra);
        }
        t.finalize();
        t
    }

    /// Human-readable topology name (embeds the key parameters).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of fabric groups — sets of ranks that reach each other
    /// without traversing a cross-group (switch/NIC-to-switch/NIC)
    /// link. Flat switch: 1; fat tree: one per edge switch;
    /// hierarchical: one per compute node.
    pub fn num_groups(&self) -> usize {
        self.group_offsets.len() - 1
    }

    /// Fabric group of `rank`. Groups are numbered by smallest member
    /// rank, densely in `0..num_groups()`.
    ///
    /// # Panics
    ///
    /// Panics when `rank` is out of range.
    pub fn group_of(&self, rank: usize) -> usize {
        self.rank_group[rank] as usize
    }

    /// The ranks of fabric group `g`, ascending.
    ///
    /// # Panics
    ///
    /// Panics when `g >= num_groups()`.
    pub fn group_ranks(&self, g: usize) -> &[usize] {
        &self.group_members[self.group_offsets[g] as usize..self.group_offsets[g + 1] as usize]
    }

    /// Whether the directed link is a cross-group crossing: both
    /// endpoints are forwarding hardware (switch/NIC), so any message
    /// on it is leaving one fabric group for another. The engine
    /// tallies foreground traffic over these links as
    /// `nic_hops`/`nic_bytes`.
    ///
    /// # Panics
    ///
    /// Panics when `link_id >= num_links()`.
    #[inline]
    pub fn is_cross_group_link(&self, link_id: usize) -> bool {
        self.cross_group[link_id]
    }

    /// Ring order that walks the physical fabric: ranks enumerated
    /// group by group (groups in smallest-rank order, members
    /// ascending), so consecutive ring neighbours share a fabric group
    /// everywhere except the `num_groups()` unavoidable group-to-group
    /// seams. On the node-major builders (`flat_switch`, `fat_tree*`,
    /// `hierarchical`) this is the identity permutation — rank ids are
    /// already fabric-contiguous; under cyclic placement
    /// ([`Topology::hierarchical_cyclic`]) it recovers the
    /// node-contiguous order a topology-oblivious ring loses.
    pub fn fabric_ring_order(&self) -> Vec<usize> {
        self.group_members.clone()
    }

    /// Number of rank endpoints.
    pub fn ranks(&self) -> usize {
        self.rank_vertex.len()
    }

    /// Number of vertices (ranks + NICs + switches).
    pub fn vertices(&self) -> usize {
        self.nodes.len()
    }

    /// Kind of vertex `v`.
    pub fn kind(&self, v: usize) -> NodeKind {
        self.nodes[v]
    }

    /// Vertex index of rank `r`.
    pub fn rank_vertex(&self, r: usize) -> usize {
        self.rank_vertex[r]
    }

    /// Number of **directed** links (two per undirected edge). Link
    /// ids in [`Hop::link_id`] are dense in `0..num_links()`, so a
    /// `Vec` of this length indexes any per-link state.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Smallest strictly-positive link propagation latency (α) in the
    /// fabric, or `None` when there are no links (or every link has
    /// zero latency). The engine's calendar queue sizes its bucket
    /// width from this: α is the natural spacing between causally
    /// related events, so one-α buckets stay shallow without
    /// scattering a burst across thousands of empty slots.
    pub fn min_latency_ns(&self) -> Option<f64> {
        let mut best = f64::INFINITY;
        for row in &self.adj {
            for &(_, spec, _) in row {
                if spec.latency_ns > 0.0 && spec.latency_ns < best {
                    best = spec.latency_ns;
                }
            }
        }
        (best != f64::INFINITY).then_some(best)
    }

    /// The `(from, to)` vertex pair of a directed link — the inverse
    /// of [`Hop::link_id`].
    ///
    /// # Panics
    ///
    /// Panics when `link_id >= num_links()`.
    pub fn link_endpoints(&self, link_id: usize) -> (usize, usize) {
        let (a, b) = self.link_ends[link_id];
        (a as usize, b as usize)
    }

    /// Human-readable label of vertex `v`: `rank3`, `nic12`, `sw7`
    /// (NIC/switch labels use the vertex index, ranks the rank id).
    pub fn node_label(&self, v: usize) -> String {
        match self.nodes[v] {
            NodeKind::Rank(r) => format!("rank{r}"),
            NodeKind::Nic => format!("nic{v}"),
            NodeKind::Switch => format!("sw{v}"),
        }
    }

    /// Human-readable label of a directed link, e.g. `rank3→sw8`.
    /// Used for trace lanes and the `--link-stats` table.
    pub fn link_label(&self, link_id: usize) -> String {
        let (a, b) = self.link_endpoints(link_id);
        format!("{}→{}", self.node_label(a), self.node_label(b))
    }

    /// The precomputed unique shortest path from rank `from` to rank
    /// `to`: a borrowed slice into the shared route arena — no
    /// allocation, no search. Empty when `from == to`. Identical hop
    /// for hop to [`Topology::route`].
    ///
    /// # Panics
    ///
    /// Panics when either rank is out of range.
    #[inline]
    pub fn route_hops(&self, from: usize, to: usize) -> &[Hop] {
        let p = self.rank_vertex.len();
        assert!(from < p && to < p, "rank out of range");
        let (offset, len) = self.route_index[from * p + to];
        &self.route_arena[offset as usize..offset as usize + len as usize]
    }

    /// Number of equal-cost shortest paths between ranks `from` and
    /// `to` — `1` everywhere except cross-group pairs of a multi-spine
    /// [`Topology::fat_tree_spines`] fabric (where it equals the spine
    /// count). Self-pairs report `1` (the empty route).
    ///
    /// # Panics
    ///
    /// Panics when either rank is out of range.
    #[inline]
    pub fn route_count(&self, from: usize, to: usize) -> usize {
        let p = self.rank_vertex.len();
        assert!(from < p && to < p, "rank out of range");
        match self.ecmp_index[from * p + to] {
            u32::MAX => 1,
            g => self.ecmp_groups[g as usize].1 as usize,
        }
    }

    /// The `k`-th equal-cost shortest path from rank `from` to rank
    /// `to` — a borrowed arena slice like [`Topology::route_hops`].
    /// Slot `0` is always the canonical route (`route_hops_nth(f, t,
    /// 0) == route_hops(f, t)`); slots `1..route_count(f, t)` are the
    /// alternates a [`crate::engine::RouteSelect::SeededEcmp`] sender
    /// picks among.
    ///
    /// # Panics
    ///
    /// Panics when either rank is out of range or
    /// `k >= route_count(from, to)`.
    #[inline]
    pub fn route_hops_nth(&self, from: usize, to: usize, k: usize) -> &[Hop] {
        if k == 0 {
            return self.route_hops(from, to);
        }
        let p = self.rank_vertex.len();
        assert!(from < p && to < p, "rank out of range");
        let g = self.ecmp_index[from * p + to];
        assert!(
            g != u32::MAX,
            "route {k} out of range for rank pair ({from}, {to}): path is unique"
        );
        let (group_offset, count) = self.ecmp_groups[g as usize];
        assert!(
            k < count as usize,
            "route {k} out of range for rank pair ({from}, {to}): {count} equal-cost paths"
        );
        let (offset, len) = self.ecmp_slots[group_offset as usize + k];
        &self.route_arena[offset as usize..offset as usize + len as usize]
    }

    /// `(offset, len)` handle of the `k`-th equal-cost route into the
    /// shared route arena — resolve once per message, then read hops
    /// with [`Topology::route_slice`]. `route_slice(route_handle(f, t,
    /// k))` is the same slice `route_hops_nth(f, t, k)` returns; the
    /// handle form just lets the engine skip the rank-pair resolution
    /// on every event of an in-flight message.
    ///
    /// # Panics
    ///
    /// Panics when either rank is out of range or
    /// `k >= route_count(from, to)`.
    #[inline]
    pub fn route_handle(&self, from: usize, to: usize, k: usize) -> (u32, u32) {
        let p = self.rank_vertex.len();
        assert!(from < p && to < p, "rank out of range");
        if k == 0 {
            return self.route_index[from * p + to];
        }
        let g = self.ecmp_index[from * p + to];
        assert!(
            g != u32::MAX,
            "route {k} out of range for rank pair ({from}, {to}): path is unique"
        );
        let (group_offset, count) = self.ecmp_groups[g as usize];
        assert!(
            k < count as usize,
            "route {k} out of range for rank pair ({from}, {to}): {count} equal-cost paths"
        );
        self.ecmp_slots[group_offset as usize + k]
    }

    /// The hops a [`Topology::route_handle`] refers to.
    #[inline]
    pub fn route_slice(&self, (offset, len): (u32, u32)) -> &[Hop] {
        &self.route_arena[offset as usize..offset as usize + len as usize]
    }

    /// Canonical shortest path from rank `from` to rank `to` as a freshly
    /// computed hop list — the on-demand BFS reference implementation
    /// (the property tests diff it against the precomputed
    /// [`Topology::route_hops`] table, which is what the engine uses).
    /// Empty when `from == to`.
    ///
    /// # Panics
    ///
    /// Panics when either rank is out of range or no path exists.
    pub fn route(&self, from: usize, to: usize) -> Vec<Hop> {
        let src = self.rank_vertex[from];
        let dst = self.rank_vertex[to];
        if src == dst {
            return Vec::new();
        }
        // BFS from src; adjacency order is deterministic, so the first
        // path found is exactly the canonical one `finalize` stored
        // (continuing a BFS never rewrites an already-set predecessor).
        let mut prev: Vec<Option<(usize, LinkSpec, u32)>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::from([src]);
        let mut seen = vec![false; self.nodes.len()];
        seen[src] = true;
        'bfs: while let Some(v) = queue.pop_front() {
            for &(w, spec, id) in &self.adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    prev[w] = Some((v, spec, id));
                    if w == dst {
                        break 'bfs;
                    }
                    queue.push_back(w);
                }
            }
        }
        let mut hops = Vec::new();
        let mut v = dst;
        while let Some((u, spec, id)) = prev[v] {
            hops.push(Hop { from: u, to: v, link: spec, link_id: id });
            v = u;
        }
        assert!(v == src, "no route between ranks {from} and {to}");
        hops.reverse();
        hops
    }

    /// Maximum rank-to-rank hop count — the fabric depth measure the
    /// variability tables sweep (flat: 2, fat tree: 4, hierarchical: 6).
    pub fn diameter_hops(&self) -> usize {
        let p = self.ranks();
        if p < 2 {
            return 0;
        }
        // All builders are symmetric enough that rank 0 vs the farthest
        // rank realises the diameter; scan rank 0 against all others.
        (1..p).map(|r| self.route_hops(0, r).len()).max().unwrap_or(0)
    }

    /// Deterministic (jitter-free, contention-free) one-way cost of a
    /// `bytes`-byte message between two ranks.
    pub fn path_cost_ns(&self, from: usize, to: usize, bytes: u64) -> f64 {
        self.route_hops(from, to)
            .iter()
            .map(|h| h.link.cost_ns(bytes))
            .sum()
    }
}

/// Collect every shortest `v → dst` path into `out`, walking the
/// shortest-path DAG forward: a directed edge `(v, w)` lies on some
/// shortest path iff it advances the distance from the source
/// (`d_src[w] == d_src[v] + 1`) and the detour through `w` still totals
/// the shortest length (`d_src[w] + d_dst[w] == total`). The forward
/// walk matters: `adj[v]` carries the `v → w` directed link id, which
/// is the id the engine charges serialization against.
#[allow(clippy::too_many_arguments)]
fn dfs_shortest_paths(
    adj: &[Vec<(usize, LinkSpec, u32)>],
    d_src: &[u32],
    d_dst: &[u32],
    total: u32,
    v: usize,
    dst: usize,
    prefix: &mut Vec<Hop>,
    out: &mut Vec<Vec<Hop>>,
) {
    if v == dst {
        out.push(prefix.clone());
        return;
    }
    for &(w, spec, id) in &adj[v] {
        if d_src[w] == d_src[v] + 1 && d_src[w] + d_dst[w] == total {
            prefix.push(Hop { from: v, to: w, link: spec, link_id: id });
            dfs_shortest_paths(adj, d_src, d_dst, total, w, dst, prefix, out);
            prefix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkSpec {
        LinkSpec::new(500.0, 10.0)
    }

    #[test]
    fn link_cost_is_alpha_plus_beta_bytes() {
        let l = LinkSpec::new(100.0, 2.0); // 2 GB/s => 0.5 ns/byte
        assert_eq!(l.cost_ns(0), 100.0);
        assert!((l.cost_ns(1000) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn flat_switch_routes_are_two_hops() {
        let t = Topology::flat_switch(8, link());
        assert_eq!(t.ranks(), 8);
        assert_eq!(t.diameter_hops(), 2);
        let r = t.route(3, 5);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].from, t.rank_vertex(3));
        assert_eq!(r[1].to, t.rank_vertex(5));
        assert!(matches!(t.kind(r[0].to), NodeKind::Switch));
    }

    #[test]
    fn fat_tree_depth_and_locality() {
        let t = Topology::fat_tree(16, 4, link(), link());
        assert_eq!(t.ranks(), 16);
        // same edge switch: 2 hops; across the core: 4 hops
        assert_eq!(t.route(0, 1).len(), 2);
        assert_eq!(t.route(0, 5).len(), 4);
        assert_eq!(t.diameter_hops(), 4);
    }

    #[test]
    fn hierarchical_depth_and_rank_layout() {
        let t = Topology::hierarchical(4, 4, link(), link(), link());
        assert_eq!(t.ranks(), 16);
        // same node: rank -> node switch -> rank
        assert_eq!(t.route(0, 3).len(), 2);
        // across nodes: rank -> sw -> nic -> top -> nic -> sw -> rank
        assert_eq!(t.route(0, 4).len(), 6);
        assert_eq!(t.diameter_hops(), 6);
    }

    #[test]
    fn route_to_self_is_empty_and_costs_nothing() {
        let t = Topology::flat_switch(4, link());
        assert!(t.route(2, 2).is_empty());
        assert_eq!(t.path_cost_ns(2, 2, 1 << 20), 0.0);
    }

    #[test]
    fn path_cost_accumulates_per_hop() {
        let t = Topology::flat_switch(4, LinkSpec::new(100.0, 1.0));
        // 2 hops, each 100 + 8 ns for 8 bytes
        assert!((t.path_cost_ns(0, 1, 8) - 216.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_flat_switch_panics() {
        Topology::flat_switch(0, link());
    }

    #[test]
    fn link_ids_are_dense_and_direction_distinct() {
        for t in [
            Topology::flat_switch(5, link()),
            Topology::fat_tree(9, 3, link(), link()),
            Topology::hierarchical(2, 3, link(), link(), link()),
        ] {
            let mut seen = vec![false; t.num_links()];
            for a in 0..t.ranks() {
                for b in 0..t.ranks() {
                    for h in t.route_hops(a, b) {
                        assert!((h.link_id as usize) < t.num_links(), "{}", t.name());
                        seen[h.link_id as usize] = true;
                    }
                }
            }
            // Every directed link that any route uses has a unique id;
            // opposite directions of the same edge never share one.
            let fwd = t.route_hops(0, 1);
            let back = t.route_hops(1, 0);
            assert_ne!(fwd[0].link_id, back[back.len() - 1].link_id);
            assert!(seen.iter().filter(|&&s| s).count() > 0);
        }
    }

    #[test]
    fn precomputed_routes_match_on_demand_bfs() {
        let t = Topology::hierarchical(3, 4, link(), link(), link());
        for a in 0..t.ranks() {
            for b in 0..t.ranks() {
                assert_eq!(t.route(a, b).as_slice(), t.route_hops(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn single_path_fabrics_report_one_route_everywhere() {
        for t in [
            Topology::flat_switch(6, link()),
            Topology::fat_tree(8, 4, link(), link()),
            Topology::hierarchical(2, 4, link(), link(), link()),
        ] {
            for a in 0..t.ranks() {
                for b in 0..t.ranks() {
                    assert_eq!(t.route_count(a, b), 1, "{} {a}->{b}", t.name());
                    assert_eq!(t.route_hops_nth(a, b, 0), t.route_hops(a, b));
                }
            }
        }
    }

    #[test]
    fn multi_spine_cross_group_pairs_expose_spines_routes() {
        for spines in [2usize, 3, 4] {
            let t = Topology::fat_tree_spines(8, 4, spines, link(), link());
            for a in 0..t.ranks() {
                for b in 0..t.ranks() {
                    let same_group = a / 4 == b / 4;
                    let expect = if a == b || same_group { 1 } else { spines };
                    assert_eq!(t.route_count(a, b), expect, "{} {a}->{b}", t.name());
                }
            }
        }
    }

    #[test]
    fn ecmp_routes_are_well_formed_equal_cost_and_distinct() {
        let t = Topology::fat_tree_spines(8, 4, 4, link(), link());
        for a in 0..t.ranks() {
            for b in 0..t.ranks() {
                let n = t.route_count(a, b);
                let canonical = t.route_hops(a, b);
                assert_eq!(t.route_hops_nth(a, b, 0), canonical);
                let mut signatures = Vec::new();
                for k in 0..n {
                    let hops = t.route_hops_nth(a, b, k);
                    assert_eq!(hops.len(), canonical.len(), "{a}->{b} route {k}");
                    if !hops.is_empty() {
                        assert_eq!(hops[0].from, t.rank_vertex(a));
                        assert_eq!(hops[hops.len() - 1].to, t.rank_vertex(b));
                        for pair in hops.windows(2) {
                            assert_eq!(pair[0].to, pair[1].from, "{a}->{b} route {k}");
                        }
                    }
                    signatures.push(hops.iter().map(|h| h.link_id).collect::<Vec<_>>());
                }
                signatures.sort();
                signatures.dedup();
                assert_eq!(signatures.len(), n, "{a}->{b} routes not distinct");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn route_hops_nth_rejects_out_of_range_slot() {
        let t = Topology::fat_tree_spines(8, 4, 2, link(), link());
        t.route_hops_nth(0, 4, 2);
    }

    #[test]
    fn fabric_groups_follow_the_physical_layout() {
        let flat = Topology::flat_switch(6, link());
        assert_eq!(flat.num_groups(), 1);
        assert_eq!(flat.group_ranks(0), &[0, 1, 2, 3, 4, 5]);

        let ft = Topology::fat_tree(16, 4, link(), link());
        assert_eq!(ft.num_groups(), 4);
        for r in 0..16 {
            assert_eq!(ft.group_of(r), r / 4);
        }
        assert_eq!(ft.group_ranks(2), &[8, 9, 10, 11]);

        let h = Topology::hierarchical(4, 4, link(), link(), link());
        assert_eq!(h.num_groups(), 4);
        for r in 0..16 {
            assert_eq!(h.group_of(r), r / 4);
        }

        let hc = Topology::hierarchical_cyclic(4, 4, link(), link(), link());
        assert_eq!(hc.num_groups(), 4);
        for r in 0..16 {
            assert_eq!(hc.group_of(r), r % 4, "cyclic placement: rank {r}");
        }
        assert_eq!(hc.group_ranks(1), &[1, 5, 9, 13]);
    }

    #[test]
    fn cross_group_links_are_exactly_the_switch_to_switch_hops() {
        // Flat switch: every link touches a rank — nothing crosses.
        let flat = Topology::flat_switch(6, link());
        assert!((0..flat.num_links()).all(|l| !flat.is_cross_group_link(l)));
        // Hierarchical: a same-node route never crosses; a cross-node
        // route crosses on exactly the sw→nic→top→nic→sw middle hops.
        let h = Topology::hierarchical(2, 4, link(), link(), link());
        for h_hop in h.route_hops(0, 3) {
            assert!(!h.is_cross_group_link(h_hop.link_id as usize));
        }
        let cross = h.route_hops(0, 4);
        let crossing: Vec<bool> = cross
            .iter()
            .map(|hop| h.is_cross_group_link(hop.link_id as usize))
            .collect();
        assert_eq!(crossing, [false, true, true, true, true, false]);
        // Fat tree: only the edge↔core uplinks cross.
        let ft = Topology::fat_tree(8, 4, link(), link());
        let crossing: Vec<bool> = ft
            .route_hops(0, 5)
            .iter()
            .map(|hop| ft.is_cross_group_link(hop.link_id as usize))
            .collect();
        assert_eq!(crossing, [false, true, true, false]);
    }

    #[test]
    fn fabric_ring_order_is_identity_on_node_major_builders() {
        for t in [
            Topology::flat_switch(7, link()),
            Topology::fat_tree_spines(16, 4, 3, link(), link()),
            Topology::hierarchical(4, 4, link(), link(), link()),
        ] {
            let order = t.fabric_ring_order();
            assert_eq!(order, (0..t.ranks()).collect::<Vec<_>>(), "{}", t.name());
        }
    }

    #[test]
    fn fabric_ring_order_recovers_node_contiguity_under_cyclic_placement() {
        let t = Topology::hierarchical_cyclic(4, 4, link(), link(), link());
        let order = t.fabric_ring_order();
        assert_eq!(order, vec![0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15]);
        // Around the aware ring, the group changes exactly num_groups
        // times; the oblivious (identity) ring changes on every hop.
        let seams = |order: &[usize]| {
            (0..order.len())
                .filter(|&i| t.group_of(order[i]) != t.group_of(order[(i + 1) % order.len()]))
                .count()
        };
        assert_eq!(seams(&order), t.num_groups());
        let identity: Vec<usize> = (0..t.ranks()).collect();
        assert_eq!(seams(&identity), t.ranks());
    }

    #[test]
    fn cyclic_placement_only_relabels_ranks() {
        // Same fabric, same link count, same diameter as the
        // node-major builder — only the rank→node map differs.
        let a = Topology::hierarchical(3, 4, link(), link(), link());
        let b = Topology::hierarchical_cyclic(3, 4, link(), link(), link());
        assert_eq!(a.vertices(), b.vertices());
        assert_eq!(a.num_links(), b.num_links());
        assert_eq!(a.diameter_hops(), b.diameter_hops());
        assert_eq!(a.num_groups(), b.num_groups());
        // Cross-node pairs cost the same either way (uniform specs).
        assert_eq!(a.route_hops(0, 4).len(), b.route_hops(0, 1).len());
    }

    #[test]
    fn single_spine_fat_tree_is_bitwise_the_classic_builder() {
        let classic = Topology::fat_tree(9, 3, link(), link());
        let spined = Topology::fat_tree_spines(9, 3, 1, link(), link());
        assert_eq!(classic.name(), spined.name());
        assert_eq!(classic.vertices(), spined.vertices());
        assert_eq!(classic.num_links(), spined.num_links());
        for a in 0..classic.ranks() {
            assert_eq!(classic.rank_vertex(a), spined.rank_vertex(a));
            for b in 0..classic.ranks() {
                assert_eq!(classic.route_hops(a, b), spined.route_hops(a, b), "{a}->{b}");
            }
        }
    }
}
