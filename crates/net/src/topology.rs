//! Interconnect topology descriptions.
//!
//! A [`Topology`] is an undirected graph of [`NodeKind`] vertices
//! (rank endpoints, NICs, switches) whose edges carry a [`LinkSpec`]
//! — the `α + β·bytes` cost model of the classic LogP/Hockney family.
//! Three builders cover the shapes the paper's future-work section
//! names:
//!
//! * [`Topology::flat_switch`] — every rank one hop from a single
//!   crossbar; the shallowest interesting fabric (depth 1);
//! * [`Topology::fat_tree`] — ranks under edge switches under one core
//!   switch (a folded two-level Clos; depth 2);
//! * [`Topology::hierarchical`] — the cluster reality: ranks share an
//!   intra-node switch, leave through a NIC, and cross a top-of-rack
//!   switch, with distinct intra-node vs inter-node latency and
//!   bandwidth (depth 3).
//!
//! Routes are unique shortest paths computed by BFS (every builder
//! produces a tree-shaped fabric, so shortest paths are unique and no
//! adaptive-routing nondeterminism sneaks in — all timing variation is
//! owned by the [`engine`](crate::engine)'s jitter model).
//!
//! Construction is two-phase under the hood: the builders add vertices
//! and links, then `finalize` assigns every **directed** link a dense
//! id (`0..`[`Topology::num_links`], the index the engine uses for its
//! busy-state vector) and precomputes every rank-pair route into one
//! shared hop arena. [`Topology::route_hops`] returns a borrowed
//! `&[Hop]` slice from that arena — the allocation-free lookup the
//! event engine rides — while [`Topology::route`] recomputes the same
//! path by on-demand BFS (the reference implementation the property
//! tests diff against the table).

/// Cost model for one link: a message of `b` bytes occupies the link
/// for `b · ns_per_byte` (serialization, β) and then lands after
/// `latency_ns` (propagation, α) plus any jitter the engine injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Propagation latency α in nanoseconds.
    pub latency_ns: f64,
    /// Inverse bandwidth β in nanoseconds per byte.
    pub ns_per_byte: f64,
}

impl LinkSpec {
    /// A link with `latency_ns` of latency and `gb_per_s` gigabytes per
    /// second of bandwidth.
    pub fn new(latency_ns: f64, gb_per_s: f64) -> Self {
        assert!(latency_ns >= 0.0 && gb_per_s > 0.0, "invalid link spec");
        LinkSpec {
            latency_ns,
            ns_per_byte: 1.0 / gb_per_s,
        }
    }

    /// Deterministic traversal cost for `bytes` (no jitter, no queuing).
    #[inline]
    pub fn cost_ns(&self, bytes: u64) -> f64 {
        self.latency_ns + self.ns_per_byte * bytes as f64
    }
}

/// What a vertex in the fabric is. Only [`NodeKind::Rank`] vertices
/// source or sink traffic; NICs and switches forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A compute endpoint holding the given MPI-style rank id.
    Rank(usize),
    /// A network interface between a node-local fabric and the
    /// inter-node fabric.
    Nic,
    /// A crossbar switch.
    Switch,
}

/// One hop of a route: the directed link `(from, to)`, its spec, and
/// the link's dense id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// Source vertex index.
    pub from: usize,
    /// Destination vertex index.
    pub to: usize,
    /// Cost model of the traversed link.
    pub link: LinkSpec,
    /// Dense id of the directed link `(from, to)` in
    /// `0..`[`Topology::num_links`] — the index the engine uses for
    /// its link-busy vector (each undirected edge contributes two
    /// directed ids).
    pub link_id: u32,
}

/// An interconnect: vertices, links, and the rank→vertex mapping.
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    nodes: Vec<NodeKind>,
    /// Adjacency: `adj[v]` lists `(neighbour, link spec, directed link id)`.
    adj: Vec<Vec<(usize, LinkSpec, u32)>>,
    /// `rank_vertex[r]` is the vertex index of rank `r`.
    rank_vertex: Vec<usize>,
    /// Number of directed links (two per undirected edge).
    num_links: usize,
    /// Shared arena of precomputed route hops; rank-pair routes are
    /// contiguous slices of this vector.
    route_arena: Vec<Hop>,
    /// `(offset, len)` into `route_arena` for the route `from → to`,
    /// stored at `from · ranks + to`.
    route_index: Vec<(u32, u32)>,
}

impl Topology {
    fn empty(name: impl Into<String>) -> Self {
        Topology {
            name: name.into(),
            nodes: Vec::new(),
            adj: Vec::new(),
            rank_vertex: Vec::new(),
            num_links: 0,
            route_arena: Vec::new(),
            route_index: Vec::new(),
        }
    }

    fn add_node(&mut self, kind: NodeKind) -> usize {
        let id = self.nodes.len();
        self.nodes.push(kind);
        self.adj.push(Vec::new());
        if let NodeKind::Rank(r) = kind {
            assert_eq!(r, self.rank_vertex.len(), "ranks must be added in order");
            self.rank_vertex.push(id);
        }
        id
    }

    fn link(&mut self, a: usize, b: usize, spec: LinkSpec) {
        let id = self.num_links as u32;
        self.num_links += 2;
        self.adj[a].push((b, spec, id));
        self.adj[b].push((a, spec, id + 1));
    }

    /// Precompute the dense route table: one BFS per source rank
    /// (every builder yields a tree, so the discovered paths match the
    /// on-demand [`Topology::route`] exactly), with all hops packed
    /// into one arena so [`Topology::route_hops`] is a slice lookup.
    /// Called by every builder as its final step.
    fn finalize(&mut self) {
        let p = self.rank_vertex.len();
        self.route_index = Vec::with_capacity(p * p);
        let mut scratch = Vec::new();
        for from in 0..p {
            let src = self.rank_vertex[from];
            // Full BFS from `src`; prev pointers are identical to the
            // early-exit BFS in `route` (continuing a BFS never rewrites
            // an already-set predecessor).
            let mut prev: Vec<Option<(usize, LinkSpec, u32)>> = vec![None; self.nodes.len()];
            let mut seen = vec![false; self.nodes.len()];
            let mut queue = std::collections::VecDeque::from([src]);
            seen[src] = true;
            while let Some(v) = queue.pop_front() {
                for &(w, spec, id) in &self.adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        prev[w] = Some((v, spec, id));
                        queue.push_back(w);
                    }
                }
            }
            for to in 0..p {
                let dst = self.rank_vertex[to];
                if dst == src {
                    self.route_index.push((self.route_arena.len() as u32, 0));
                    continue;
                }
                scratch.clear();
                let mut v = dst;
                while let Some((u, spec, id)) = prev[v] {
                    scratch.push(Hop { from: u, to: v, link: spec, link_id: id });
                    v = u;
                }
                assert!(v == src, "no route between ranks {from} and {to}");
                let offset = self.route_arena.len() as u32;
                self.route_arena.extend(scratch.iter().rev());
                self.route_index.push((offset, scratch.len() as u32));
            }
        }
    }

    /// `p` ranks hanging off one crossbar switch — depth 1.
    ///
    /// # Panics
    ///
    /// Panics when `p == 0`.
    pub fn flat_switch(p: usize, link: LinkSpec) -> Self {
        assert!(p > 0, "flat_switch needs at least one rank");
        let mut t = Topology::empty(format!("flat-switch(p={p})"));
        let sw = t.add_node(NodeKind::Switch);
        for r in 0..p {
            let v = t.add_node(NodeKind::Rank(r));
            t.link(v, sw, link);
        }
        t.finalize();
        t
    }

    /// Two-level folded-Clos fat tree — depth 2: `radix` ranks per edge
    /// switch over `edge` links; edge switches meet at one core switch
    /// over `core` links.
    ///
    /// # Panics
    ///
    /// Panics when `p == 0` or `radix < 2`.
    pub fn fat_tree(p: usize, radix: usize, edge: LinkSpec, core: LinkSpec) -> Self {
        assert!(p > 0, "fat_tree needs at least one rank");
        assert!(radix >= 2, "fat_tree radix must be at least 2");
        let mut t = Topology::empty(format!("fat-tree(p={p},radix={radix})"));
        let core_sw = t.add_node(NodeKind::Switch);
        let groups = p.div_ceil(radix);
        for g in 0..groups {
            let edge_sw = t.add_node(NodeKind::Switch);
            t.link(edge_sw, core_sw, core);
            for r in (g * radix)..(((g + 1) * radix).min(p)) {
                let v = t.add_node(NodeKind::Rank(r));
                t.link(v, edge_sw, edge);
            }
        }
        t.finalize();
        t
    }

    /// Cluster-shaped fabric — depth 3: `nodes` compute nodes of
    /// `ranks_per_node` ranks each. Ranks attach to a node-local switch
    /// over `intra` links; each node switch reaches its NIC over `nic`
    /// links; NICs meet at a top switch over `inter` links.
    ///
    /// Rank ids are node-major: node `n` hosts ranks
    /// `n·ranks_per_node .. (n+1)·ranks_per_node`.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn hierarchical(
        nodes: usize,
        ranks_per_node: usize,
        intra: LinkSpec,
        nic: LinkSpec,
        inter: LinkSpec,
    ) -> Self {
        assert!(nodes > 0 && ranks_per_node > 0, "empty hierarchy");
        let mut t = Topology::empty(format!("hierarchical(nodes={nodes},rpn={ranks_per_node})"));
        let top = t.add_node(NodeKind::Switch);
        for _ in 0..nodes {
            let node_sw = t.add_node(NodeKind::Switch);
            let node_nic = t.add_node(NodeKind::Nic);
            t.link(node_sw, node_nic, nic);
            t.link(node_nic, top, inter);
            for _ in 0..ranks_per_node {
                let r = t.rank_vertex.len();
                let v = t.add_node(NodeKind::Rank(r));
                t.link(v, node_sw, intra);
            }
        }
        t.finalize();
        t
    }

    /// Human-readable topology name (embeds the key parameters).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rank endpoints.
    pub fn ranks(&self) -> usize {
        self.rank_vertex.len()
    }

    /// Number of vertices (ranks + NICs + switches).
    pub fn vertices(&self) -> usize {
        self.nodes.len()
    }

    /// Kind of vertex `v`.
    pub fn kind(&self, v: usize) -> NodeKind {
        self.nodes[v]
    }

    /// Vertex index of rank `r`.
    pub fn rank_vertex(&self, r: usize) -> usize {
        self.rank_vertex[r]
    }

    /// Number of **directed** links (two per undirected edge). Link
    /// ids in [`Hop::link_id`] are dense in `0..num_links()`, so a
    /// `Vec` of this length indexes any per-link state.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// The precomputed unique shortest path from rank `from` to rank
    /// `to`: a borrowed slice into the shared route arena — no
    /// allocation, no search. Empty when `from == to`. Identical hop
    /// for hop to [`Topology::route`].
    ///
    /// # Panics
    ///
    /// Panics when either rank is out of range.
    #[inline]
    pub fn route_hops(&self, from: usize, to: usize) -> &[Hop] {
        let p = self.rank_vertex.len();
        assert!(from < p && to < p, "rank out of range");
        let (offset, len) = self.route_index[from * p + to];
        &self.route_arena[offset as usize..offset as usize + len as usize]
    }

    /// Unique shortest path from rank `from` to rank `to` as a freshly
    /// computed hop list — the on-demand BFS reference implementation
    /// (the property tests diff it against the precomputed
    /// [`Topology::route_hops`] table, which is what the engine uses).
    /// Empty when `from == to`.
    ///
    /// # Panics
    ///
    /// Panics when either rank is out of range or no path exists.
    pub fn route(&self, from: usize, to: usize) -> Vec<Hop> {
        let src = self.rank_vertex[from];
        let dst = self.rank_vertex[to];
        if src == dst {
            return Vec::new();
        }
        // BFS from src; every builder yields a tree, so the first path
        // found is the unique shortest one.
        let mut prev: Vec<Option<(usize, LinkSpec, u32)>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::from([src]);
        let mut seen = vec![false; self.nodes.len()];
        seen[src] = true;
        'bfs: while let Some(v) = queue.pop_front() {
            for &(w, spec, id) in &self.adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    prev[w] = Some((v, spec, id));
                    if w == dst {
                        break 'bfs;
                    }
                    queue.push_back(w);
                }
            }
        }
        let mut hops = Vec::new();
        let mut v = dst;
        while let Some((u, spec, id)) = prev[v] {
            hops.push(Hop { from: u, to: v, link: spec, link_id: id });
            v = u;
        }
        assert!(v == src, "no route between ranks {from} and {to}");
        hops.reverse();
        hops
    }

    /// Maximum rank-to-rank hop count — the fabric depth measure the
    /// variability tables sweep (flat: 2, fat tree: 4, hierarchical: 6).
    pub fn diameter_hops(&self) -> usize {
        let p = self.ranks();
        if p < 2 {
            return 0;
        }
        // All builders are symmetric enough that rank 0 vs the farthest
        // rank realises the diameter; scan rank 0 against all others.
        (1..p).map(|r| self.route_hops(0, r).len()).max().unwrap_or(0)
    }

    /// Deterministic (jitter-free, contention-free) one-way cost of a
    /// `bytes`-byte message between two ranks.
    pub fn path_cost_ns(&self, from: usize, to: usize, bytes: u64) -> f64 {
        self.route_hops(from, to)
            .iter()
            .map(|h| h.link.cost_ns(bytes))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkSpec {
        LinkSpec::new(500.0, 10.0)
    }

    #[test]
    fn link_cost_is_alpha_plus_beta_bytes() {
        let l = LinkSpec::new(100.0, 2.0); // 2 GB/s => 0.5 ns/byte
        assert_eq!(l.cost_ns(0), 100.0);
        assert!((l.cost_ns(1000) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn flat_switch_routes_are_two_hops() {
        let t = Topology::flat_switch(8, link());
        assert_eq!(t.ranks(), 8);
        assert_eq!(t.diameter_hops(), 2);
        let r = t.route(3, 5);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].from, t.rank_vertex(3));
        assert_eq!(r[1].to, t.rank_vertex(5));
        assert!(matches!(t.kind(r[0].to), NodeKind::Switch));
    }

    #[test]
    fn fat_tree_depth_and_locality() {
        let t = Topology::fat_tree(16, 4, link(), link());
        assert_eq!(t.ranks(), 16);
        // same edge switch: 2 hops; across the core: 4 hops
        assert_eq!(t.route(0, 1).len(), 2);
        assert_eq!(t.route(0, 5).len(), 4);
        assert_eq!(t.diameter_hops(), 4);
    }

    #[test]
    fn hierarchical_depth_and_rank_layout() {
        let t = Topology::hierarchical(4, 4, link(), link(), link());
        assert_eq!(t.ranks(), 16);
        // same node: rank -> node switch -> rank
        assert_eq!(t.route(0, 3).len(), 2);
        // across nodes: rank -> sw -> nic -> top -> nic -> sw -> rank
        assert_eq!(t.route(0, 4).len(), 6);
        assert_eq!(t.diameter_hops(), 6);
    }

    #[test]
    fn route_to_self_is_empty_and_costs_nothing() {
        let t = Topology::flat_switch(4, link());
        assert!(t.route(2, 2).is_empty());
        assert_eq!(t.path_cost_ns(2, 2, 1 << 20), 0.0);
    }

    #[test]
    fn path_cost_accumulates_per_hop() {
        let t = Topology::flat_switch(4, LinkSpec::new(100.0, 1.0));
        // 2 hops, each 100 + 8 ns for 8 bytes
        assert!((t.path_cost_ns(0, 1, 8) - 216.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_flat_switch_panics() {
        Topology::flat_switch(0, link());
    }

    #[test]
    fn link_ids_are_dense_and_direction_distinct() {
        for t in [
            Topology::flat_switch(5, link()),
            Topology::fat_tree(9, 3, link(), link()),
            Topology::hierarchical(2, 3, link(), link(), link()),
        ] {
            let mut seen = vec![false; t.num_links()];
            for a in 0..t.ranks() {
                for b in 0..t.ranks() {
                    for h in t.route_hops(a, b) {
                        assert!((h.link_id as usize) < t.num_links(), "{}", t.name());
                        seen[h.link_id as usize] = true;
                    }
                }
            }
            // Every directed link that any route uses has a unique id;
            // opposite directions of the same edge never share one.
            let fwd = t.route_hops(0, 1);
            let back = t.route_hops(1, 0);
            assert_ne!(fwd[0].link_id, back[back.len() - 1].link_id);
            assert!(seen.iter().filter(|&&s| s).count() > 0);
        }
    }

    #[test]
    fn precomputed_routes_match_on_demand_bfs() {
        let t = Topology::hierarchical(3, 4, link(), link(), link());
        for a in 0..t.ranks() {
            for b in 0..t.ranks() {
                assert_eq!(t.route(a, b).as_slice(), t.route_hops(a, b), "{a}->{b}");
            }
        }
    }
}
