//! Analytic α–β cost models for allreduce collectives.
//!
//! The classic latency–bandwidth ("Hockney") estimates, used two ways:
//!
//! * as a sanity anchor for the event engine — the property tests pin
//!   the per-message physical floor (arrival ≥ Σ(α + β·b) along the
//!   route), and the `table9` binary prints these serial-chain
//!   estimates alongside the simulated makespans (the simulation
//!   overlaps tree levels, so it typically lands below the serial
//!   estimate and above the single-message floor);
//! * to extend the paper's "cost of reproducibility" story to the
//!   network: [`CostModel::reproducible_overhead`] prices the exact
//!   (reproducible) allreduce, whose wire format is a long accumulator
//!   per element instead of one `f64`, as a pure bandwidth-term
//!   inflation.
//!
//! `α` is the end-to-end one-way latency between two ranks and `β` the
//! end-to-end inverse bandwidth; extract both from a [`Topology`] with
//! [`CostModel::from_topology`] (worst-case rank pair).

use crate::topology::Topology;

/// End-to-end α–β parameters of a fabric, as seen by one rank pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// One-way zero-byte message latency in nanoseconds.
    pub alpha_ns: f64,
    /// Inverse bandwidth in nanoseconds per byte.
    pub beta_ns_per_byte: f64,
}

impl CostModel {
    /// Extract worst-case end-to-end parameters from a topology: α is
    /// the zero-byte cost over the longest rank-to-rank route, β the
    /// summed per-hop serialization cost over the same route
    /// (store-and-forward: every hop re-serializes the payload).
    pub fn from_topology(topo: &Topology) -> Self {
        let p = topo.ranks();
        if p < 2 {
            return CostModel {
                alpha_ns: 0.0,
                beta_ns_per_byte: 0.0,
            };
        }
        let (mut alpha, mut beta) = (0.0f64, 0.0f64);
        for r in 1..p {
            let route = topo.route(0, r);
            let a: f64 = route.iter().map(|h| h.link.latency_ns).sum();
            let b: f64 = route.iter().map(|h| h.link.ns_per_byte).sum();
            if a + b > alpha + beta {
                alpha = a;
                beta = b;
            }
        }
        CostModel {
            alpha_ns: alpha,
            beta_ns_per_byte: beta,
        }
    }

    /// Worst-case α–β parameters over the **same-group** rank pairs
    /// (ranks sharing a fabric group, [`Topology::group_of`]): the
    /// intra-node leg a topology-aware placement keeps most traffic
    /// on. α and β are maximized jointly (the `α + β` objective of
    /// [`CostModel::from_topology`]). Zero when no group holds two
    /// ranks.
    pub fn intra_group(topo: &Topology) -> Self {
        Self::worst_pair(topo, |a, b| topo.group_of(a) == topo.group_of(b))
    }

    /// Worst-case α–β parameters over the **cross-group** rank pairs —
    /// the NIC/spine leg only group leaders traverse under a
    /// topology-aware placement. Zero when the fabric has a single
    /// group (nothing ever crosses).
    pub fn inter_group(topo: &Topology) -> Self {
        Self::worst_pair(topo, |a, b| topo.group_of(a) != topo.group_of(b))
    }

    /// Worst `α + β` rank pair among those `keep` admits, over the
    /// precomputed canonical routes.
    fn worst_pair(topo: &Topology, keep: impl Fn(usize, usize) -> bool) -> Self {
        let p = topo.ranks();
        let (mut alpha, mut beta) = (0.0f64, 0.0f64);
        for a in 0..p {
            for b in 0..p {
                if a == b || !keep(a, b) {
                    continue;
                }
                let route = topo.route_hops(a, b);
                let ra: f64 = route.iter().map(|h| h.link.latency_ns).sum();
                let rb: f64 = route.iter().map(|h| h.link.ns_per_byte).sum();
                if ra + rb > alpha + beta {
                    alpha = ra;
                    beta = rb;
                }
            }
        }
        CostModel {
            alpha_ns: alpha,
            beta_ns_per_byte: beta,
        }
    }

    /// Ring allreduce (reduce-scatter + allgather):
    /// `2(p−1)α + 2((p−1)/p)·n·β` for `n` payload bytes.
    pub fn ring_allreduce_ns(&self, p: usize, bytes: u64) -> f64 {
        if p < 2 {
            return 0.0;
        }
        let pf = p as f64;
        2.0 * (pf - 1.0) * self.alpha_ns
            + 2.0 * ((pf - 1.0) / pf) * bytes as f64 * self.beta_ns_per_byte
    }

    /// Depth of the rank-0-rooted `fanout`-ary reduction tree over `p`
    /// ranks: how many levels separate the deepest leaf from the root.
    ///
    /// # Panics
    ///
    /// Panics when `fanout < 2`.
    pub fn tree_depth(p: usize, fanout: usize) -> usize {
        assert!(fanout >= 2, "tree fanout must be at least 2");
        let mut depth = 0usize;
        let mut reach = 1usize;
        while reach < p {
            reach = reach.saturating_mul(fanout) + 1;
            depth += 1;
        }
        depth
    }

    /// K-ary reduction tree + broadcast: `d = ⌈log_f p⌉` levels up and
    /// down; each level costs one latency plus up to `f` serialized
    /// child payloads at the parent: `2d(α + f·n·β)`.
    pub fn tree_allreduce_ns(&self, p: usize, fanout: usize, bytes: u64) -> f64 {
        if p < 2 {
            assert!(fanout >= 2, "tree fanout must be at least 2");
            return 0.0;
        }
        let depth = Self::tree_depth(p, fanout);
        2.0 * depth as f64
            * (self.alpha_ns + fanout as f64 * bytes as f64 * self.beta_ns_per_byte)
    }

    /// Recursive-doubling allreduce: `log₂ p` full-payload exchange
    /// rounds: `log₂(p)·(α + n·β)`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is a power of two.
    pub fn recursive_doubling_allreduce_ns(&self, p: usize, bytes: u64) -> f64 {
        assert!(p.is_power_of_two(), "recursive doubling needs a power-of-two rank count");
        if p < 2 {
            return 0.0;
        }
        let rounds = p.trailing_zeros() as f64;
        rounds * (self.alpha_ns + bytes as f64 * self.beta_ns_per_byte)
    }

    /// Segmented (pipelined) ring allreduce: each rank-segment is cut
    /// into `segments` chunks that walk the ring back to back, so
    /// chunk `i+1` serializes while chunk `i` propagates. The classic
    /// pipeline estimate: `2(p−1)` steps plus `k−1` fill stages, each
    /// costing one latency plus one chunk serialization:
    /// `(2(p−1) + k − 1) · (α + n·β/(p·k))`. At `k = 1` this is
    /// exactly [`CostModel::ring_allreduce_ns`].
    ///
    /// # Panics
    ///
    /// Panics when `segments == 0`.
    pub fn segmented_ring_allreduce_ns(&self, p: usize, bytes: u64, segments: usize) -> f64 {
        assert!(segments > 0, "segment count must be positive");
        if segments == 1 {
            // Delegate so the unsegmented estimate stays bit-identical
            // (the pipeline formula is algebraically equal at k = 1
            // but would round differently).
            return self.ring_allreduce_ns(p, bytes);
        }
        if p < 2 {
            return 0.0;
        }
        let (pf, k) = (p as f64, segments as f64);
        let stages = 2.0 * (pf - 1.0) + (k - 1.0);
        stages * (self.alpha_ns + bytes as f64 * self.beta_ns_per_byte / (pf * k))
    }

    /// Segmented (pipelined) k-ary tree allreduce: the payload is cut
    /// into `segments` chunks that flow up and down the `d`-level tree
    /// back to back: `(2d + k − 1) · (α + f·n·β/k)`. At `k = 1` this
    /// is exactly [`CostModel::tree_allreduce_ns`].
    ///
    /// # Panics
    ///
    /// Panics when `fanout < 2` or `segments == 0`.
    pub fn segmented_tree_allreduce_ns(
        &self,
        p: usize,
        fanout: usize,
        bytes: u64,
        segments: usize,
    ) -> f64 {
        assert!(segments > 0, "segment count must be positive");
        assert!(fanout >= 2, "tree fanout must be at least 2");
        if segments == 1 {
            // Delegate so the unsegmented estimate stays bit-identical
            // (the pipeline formula is algebraically equal at k = 1
            // but would round differently).
            return self.tree_allreduce_ns(p, fanout, bytes);
        }
        if p < 2 {
            return 0.0;
        }
        let depth = Self::tree_depth(p, fanout) as f64;
        let k = segments as f64;
        let stages = 2.0 * depth + (k - 1.0);
        stages * (self.alpha_ns + fanout as f64 * bytes as f64 * self.beta_ns_per_byte / k)
    }

    /// Topology-aware hierarchical allreduce: a `intra_fanout`-ary
    /// reduce + broadcast inside each fabric group priced by the
    /// `intra` leg, plus an `inter_fanout`-ary allreduce among the
    /// group leaders priced by the `inter` leg — the two phases
    /// pipeline in the event engine, but the serial sum is the same
    /// conservative estimate the oblivious tree model makes:
    /// `2·d_i·(α_i + f_i·n·β_i) + 2·d_x·(α_x + f_x·n·β_x)`.
    ///
    /// # Panics
    ///
    /// Panics when either fanout is below 2.
    pub fn hierarchical_allreduce_ns(
        intra: CostModel,
        inter: CostModel,
        groups: usize,
        group_size: usize,
        intra_fanout: usize,
        inter_fanout: usize,
        bytes: u64,
    ) -> f64 {
        intra.tree_allreduce_ns(group_size, intra_fanout, bytes)
            + inter.tree_allreduce_ns(groups, inter_fanout, bytes)
    }

    /// Double binary tree allreduce: two complementary binary trees
    /// each carry half the payload concurrently, so the makespan is
    /// one binary-tree allreduce at half the bytes:
    /// `2·d·(α + 2·(n/2)·β)`.
    pub fn double_binary_tree_allreduce_ns(&self, p: usize, bytes: u64) -> f64 {
        if p < 2 {
            return 0.0;
        }
        let depth = Self::tree_depth(p, 2) as f64;
        2.0 * depth * (self.alpha_ns + 2.0 * (bytes as f64 / 2.0) * self.beta_ns_per_byte)
    }

    /// Fabric-mapped ring allreduce: the ring visits ranks in fabric
    /// order, so only `groups` of the `p` hops cross the NIC/spine —
    /// the latency term mixes the two legs by hop share while the
    /// bandwidth term stays pinned to the slower leg (every byte still
    /// circulates the whole ring):
    /// `2(p−1)·ᾱ + 2((p−1)/p)·n·max(β_i, β_x)` with
    /// `ᾱ = ((p−G)·α_i + G·α_x)/p`.
    pub fn fabric_ring_allreduce_ns(
        intra: CostModel,
        inter: CostModel,
        p: usize,
        groups: usize,
        bytes: u64,
    ) -> f64 {
        if p < 2 {
            return 0.0;
        }
        let (pf, g) = (p as f64, groups as f64);
        let alpha = ((pf - g) * intra.alpha_ns + g * inter.alpha_ns) / pf;
        let beta = intra.beta_ns_per_byte.max(inter.beta_ns_per_byte);
        2.0 * (pf - 1.0) * alpha + 2.0 * ((pf - 1.0) / pf) * bytes as f64 * beta
    }

    /// Multiplicative bandwidth overhead of shipping `payload_bytes`
    /// of exact-accumulator state per element instead of one `f64`:
    /// the bandwidth term inflates by `payload_bytes / 8`, the latency
    /// term does not.
    ///
    /// Returns the modeled cost ratio (reproducible / plain) for an
    /// allreduce whose plain cost splits into `alpha_part` latency ns
    /// and `beta_part` bandwidth ns.
    pub fn reproducible_overhead(alpha_part: f64, beta_part: f64, payload_bytes: usize) -> f64 {
        let plain = alpha_part + beta_part;
        if plain == 0.0 {
            return 1.0;
        }
        let factor = payload_bytes as f64 / std::mem::size_of::<f64>() as f64;
        (alpha_part + beta_part * factor) / plain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn model() -> CostModel {
        CostModel {
            alpha_ns: 1000.0,
            beta_ns_per_byte: 0.1,
        }
    }

    #[test]
    fn ring_cost_formula() {
        let c = model().ring_allreduce_ns(4, 4000);
        // 2·3·1000 + 2·(3/4)·4000·0.1 = 6000 + 600
        assert!((c - 6600.0).abs() < 1e-9);
        assert_eq!(model().ring_allreduce_ns(1, 4000), 0.0);
    }

    #[test]
    fn tree_cost_grows_with_depth() {
        let m = model();
        let shallow = m.tree_allreduce_ns(4, 4, 1000);
        let deep = m.tree_allreduce_ns(64, 2, 1000);
        assert!(deep > shallow);
    }

    #[test]
    fn recursive_doubling_cost_formula() {
        let c = model().recursive_doubling_allreduce_ns(8, 1000);
        // 3 rounds × (1000 + 100)
        assert!((c - 3300.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn recursive_doubling_rejects_non_pow2() {
        model().recursive_doubling_allreduce_ns(6, 8);
    }

    #[test]
    fn segmented_models_reduce_to_unsegmented_at_one_chunk() {
        let m = model();
        for p in [2usize, 4, 16, 64] {
            let n = 1u64 << 16;
            assert_eq!(
                m.segmented_ring_allreduce_ns(p, n, 1).to_bits(),
                m.ring_allreduce_ns(p, n).to_bits(),
                "p={p}"
            );
            assert_eq!(
                m.segmented_tree_allreduce_ns(p, 4, n, 1).to_bits(),
                m.tree_allreduce_ns(p, 4, n).to_bits(),
                "p={p}"
            );
        }
    }

    #[test]
    fn segmentation_pays_off_for_bandwidth_bound_payloads() {
        // Large payload, nontrivial latency: pipelining must beat the
        // unsegmented estimate, and an absurd chunk count (latency
        // dominated) must lose again.
        let m = model();
        let n = 64u64 << 20;
        let base = m.segmented_ring_allreduce_ns(16, n, 1);
        let piped = m.segmented_ring_allreduce_ns(16, n, 16);
        assert!(piped < base, "{piped} vs {base}");
        let shredded = m.segmented_ring_allreduce_ns(16, n, 1 << 20);
        assert!(shredded > piped);
        let tbase = m.segmented_tree_allreduce_ns(64, 4, n, 1);
        let tpiped = m.segmented_tree_allreduce_ns(64, 4, n, 16);
        assert!(tpiped < tbase, "{tpiped} vs {tbase}");
    }

    #[test]
    fn from_topology_prefers_the_far_pair() {
        let t = Topology::hierarchical(
            2,
            2,
            LinkSpec::new(100.0, 100.0),
            LinkSpec::new(200.0, 50.0),
            LinkSpec::new(1000.0, 10.0),
        );
        let m = CostModel::from_topology(&t);
        // cross-node route: intra + nic + inter + inter + nic + intra
        assert!((m.alpha_ns - (100.0 + 200.0 + 1000.0 + 1000.0 + 200.0 + 100.0)).abs() < 1e-9);
        assert!(m.beta_ns_per_byte > 0.0);
    }

    fn hier_topo() -> Topology {
        Topology::hierarchical(
            4,
            4,
            LinkSpec::new(100.0, 100.0),
            LinkSpec::new(200.0, 50.0),
            LinkSpec::new(1000.0, 10.0),
        )
    }

    #[test]
    fn group_extractors_split_the_fabric_legs() {
        let t = hier_topo();
        let intra = CostModel::intra_group(&t);
        let inter = CostModel::inter_group(&t);
        // Same-node route: rank → sw → rank, 2 intra links.
        assert!((intra.alpha_ns - 200.0).abs() < 1e-9);
        // Cross-node route: intra + nic + inter + inter + nic + intra.
        assert!((inter.alpha_ns - 2600.0).abs() < 1e-9);
        assert!(inter.beta_ns_per_byte > intra.beta_ns_per_byte);
        // The worst cross pair is also the fabric-wide worst pair.
        assert_eq!(inter, CostModel::from_topology(&t));
        // Flat switch: one group, so nothing ever crosses.
        let flat = Topology::flat_switch(8, LinkSpec::new(100.0, 100.0));
        let none = CostModel::inter_group(&flat);
        assert_eq!(none.alpha_ns, 0.0);
        assert_eq!(none.beta_ns_per_byte, 0.0);
        assert_eq!(CostModel::intra_group(&flat), CostModel::from_topology(&flat));
    }

    #[test]
    fn aware_models_undercut_oblivious_on_hierarchical_fabrics() {
        let t = hier_topo();
        let oblivious = CostModel::from_topology(&t);
        let intra = CostModel::intra_group(&t);
        let inter = CostModel::inter_group(&t);
        let n = 1u64 << 16;
        let hier = CostModel::hierarchical_allreduce_ns(intra, inter, 4, 4, 4, 4, n);
        let tree = oblivious.tree_allreduce_ns(16, 4, n);
        assert!(hier < tree, "hierarchical {hier} vs oblivious tree {tree}");
        let fabric = CostModel::fabric_ring_allreduce_ns(intra, inter, 16, 4, n);
        let ring = oblivious.ring_allreduce_ns(16, n);
        assert!(fabric < ring, "fabric ring {fabric} vs oblivious ring {ring}");
    }

    #[test]
    fn double_binary_tree_halves_the_bandwidth_term() {
        let m = model();
        let dbt = m.double_binary_tree_allreduce_ns(16, 1 << 20);
        let single = m.tree_allreduce_ns(16, 2, 1 << 20);
        assert!(dbt < single, "{dbt} vs {single}");
        // Latency-only payloads gain nothing: same depth, same α term.
        let lat_only = CostModel { alpha_ns: 1000.0, beta_ns_per_byte: 0.0 };
        assert_eq!(
            lat_only.double_binary_tree_allreduce_ns(16, 1 << 20),
            lat_only.tree_allreduce_ns(16, 2, 1 << 20)
        );
        assert_eq!(m.double_binary_tree_allreduce_ns(1, 1 << 20), 0.0);
    }

    #[test]
    fn reproducible_overhead_is_bandwidth_only() {
        // pure-latency collective: payload inflation is free
        assert_eq!(CostModel::reproducible_overhead(1000.0, 0.0, 560), 1.0);
        // pure-bandwidth collective: overhead = payload factor
        let r = CostModel::reproducible_overhead(0.0, 1000.0, 80);
        assert!((r - 10.0).abs() < 1e-12);
        // degenerate zero-cost case
        assert_eq!(CostModel::reproducible_overhead(0.0, 0.0, 560), 1.0);
    }
}
