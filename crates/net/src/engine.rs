//! Seeded discrete-event message engine.
//!
//! [`NetSim`] moves messages over a [`Topology`] hop by hop. Each hop
//! of a `b`-byte message over a link with spec `(α, β)` costs
//!
//! ```text
//! wait (link busy)  +  β·b (serialization)  +  α (propagation)  +  jitter
//! ```
//!
//! Links are store-and-forward and serialize: a directed link carries
//! one message at a time, so fan-in through a shared switch port
//! spaces arrivals out even without jitter. The *only* nondeterminism
//! is the seeded [`JitterModel`]; with [`JitterModel::none`] the
//! engine is bit-for-bit deterministic — that zero-jitter mode is the
//! suite's model of a software-scheduled interconnect (the LPU
//! multiprocessor of the paper's conclusion), and the jittered mode is
//! "MPI on a busy fabric".
//!
//! Events with equal timestamps resolve by injection sequence number,
//! so a given seed always replays the identical schedule.
//!
//! The hot path is allocation-free and index-based: routes are
//! borrowed `&[Hop]` slices from the topology's precomputed arena
//! ([`Topology::route_hops`]), per-link busy state lives in a dense
//! `Vec<f64>` indexed by [`crate::topology::Hop::link_id`], and message
//! slots are recycled once a message delivers (external message ids
//! stay injection-ordered, so jitter streams and tie-breaking are
//! unaffected by recycling). After warm-up, injecting and delivering a
//! message touches no allocator at all.
//!
//! The event queue runs on a calendar/bucket queue by default
//! ([`QueueImpl::Calendar`]) — amortized O(1) pops with buckets one
//! link-α wide — popping in *exactly* the `(time, sequence)` order of
//! the retained `BinaryHeap` reference ([`QueueImpl::Heap`]), so the
//! two engines are bitwise interchangeable and the property suite
//! diffs them continuously. Link-drain (queue-depth) accounting needs
//! no priority queue at all: each link's serialization-finish times
//! are already monotone, so they live in per-link FIFOs expired on
//! entry to that link.
//!
//! ## Multi-tenant contention
//!
//! Beyond jitter, [`FabricConfig`] adds the *other* source of arrival
//! reordering real fabrics have — contention:
//!
//! * [`Background`] traffic: seeded on/off senders (one per rank)
//!   inject bursts of bystander messages through the **same event
//!   queue**, so foreground messages are reordered by link
//!   `busy_until` queueing, not by an injected timestamp fudge. The
//!   whole schedule is a pure function of `(seed, config)`.
//! * [`RouteSelect::SeededEcmp`]: per-message seeded route choice
//!   among the equal-cost paths a multi-spine fabric exposes
//!   ([`Topology::route_hops_nth`]) — adaptive/ECMP routing as
//!   another seeded, replayable nondeterminism source.
//!
//! With `load = 0` and [`RouteSelect::Fixed`] the engine is
//! bit-for-bit the plain engine: same events, same timestamps, same
//! stats. Per-link wait/queue-depth counters ([`LinkStats`],
//! [`RunStats::wait_ns`] and friends) observe contention without
//! perturbing it.

use fpna_core::rng::{derive_seed, SplitMix64};
use crate::topology::Topology;
use fpna_obs::counters::{self, Counter};
use fpna_obs::profile::{self, PhaseStat};
use fpna_obs::trace;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Per-hop timing noise: uniform in `[0, frac_of_cost · (α + β·b))` —
/// a fraction of the hop's whole deterministic service time, because
/// real fabric noise (congestion, retransmits, adaptive detours)
/// scales with how long the message occupies the path, not just with
/// propagation delay. Samples are drawn from a stream keyed by
/// `(seed, message, hop)` so a run is replayable from its seed alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterModel {
    /// Jitter amplitude as a fraction of each hop's deterministic
    /// service time (serialization + latency).
    pub frac_of_cost: f64,
    /// Seed standing in for "what the fabric did this run".
    pub seed: u64,
}

impl JitterModel {
    /// The software-scheduled fabric: no jitter at all.
    pub fn none() -> Self {
        JitterModel {
            frac_of_cost: 0.0,
            seed: 0,
        }
    }

    /// Jitter of `frac` of each hop's service time, driven by `seed`.
    pub fn uniform(frac: f64, seed: u64) -> Self {
        assert!(frac >= 0.0, "jitter fraction must be non-negative");
        JitterModel {
            frac_of_cost: frac,
            seed,
        }
    }

    /// `true` when this model can never perturb a timestamp.
    pub fn is_zero(&self) -> bool {
        self.frac_of_cost == 0.0
    }

    fn sample_ns(&self, msg: u64, hop: u64, hop_cost_ns: f64) -> f64 {
        if self.frac_of_cost == 0.0 {
            return 0.0;
        }
        let mut g = SplitMix64::new(
            self.seed
                ^ msg.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ hop.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        g.next_u64(); // decorrelate nearby keys
        self.frac_of_cost * hop_cost_ns * g.next_f64()
    }
}

/// How a sender picks among equal-cost shortest paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteSelect {
    /// Always the canonical (slot-0) route — deterministic routing,
    /// bit-identical to the pre-ECMP engine.
    #[default]
    Fixed,
    /// Seeded per-message choice among all equal-cost paths
    /// ([`Topology::route_count`]): the model of adaptive/ECMP
    /// routing. The pick is a pure function of `(seed, message id)`,
    /// so a run replays exactly from its seed.
    SeededEcmp {
        /// Seed standing in for the fabric's hash/placement state.
        seed: u64,
    },
}

/// Seeded on/off background ("bystander tenant") traffic: every rank
/// hosts a sender that alternates ON bursts of `burst` messages with
/// OFF pauses, tuned so its uplink sees utilization ≈ `load`. All
/// inter-send gaps are drawn from a per-sender [`SplitMix64`] stream
/// (`derive_seed(seed, rank)`), so the full schedule is a pure
/// function of `(seed, config)`. Background flows ride the same event
/// queue and the same `busy_until` link state as foreground traffic —
/// they reorder foreground arrivals through *queueing*, not through
/// timestamp noise — but are never handed to the delivery callback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Background {
    /// Offered-load factor: target utilization of each sender's
    /// uplink. `0.0` disables background traffic entirely.
    pub load: f64,
    /// Seed standing in for "what the other tenants did this run".
    pub seed: u64,
    /// Bytes per background message — exact under
    /// [`FlowSizes::Fixed`], the distribution mean under
    /// [`FlowSizes::Pareto`].
    pub bytes: u64,
    /// Messages per ON burst.
    pub burst: u32,
    /// Per-message size distribution (fixed by default).
    pub flow_sizes: FlowSizes,
}

/// Per-message background flow sizes.
///
/// Datacenter tenant traffic is famously heavy-tailed ("elephants and
/// mice"); [`FlowSizes::Pareto`] models that regime with a seeded
/// Pareto draw per message, scaled so the mean stays
/// [`Background::bytes`] — the offered-load calibration is unchanged,
/// but contention arrives in rare large clumps instead of a steady
/// drizzle. The default [`FlowSizes::Fixed`] consumes no extra RNG
/// draws, so every pre-existing background schedule replays bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FlowSizes {
    /// Every background message carries exactly [`Background::bytes`].
    #[default]
    Fixed,
    /// Heavy-tailed sizes: `Pareto(α)` with scale `x_m =
    /// bytes·(α−1)/α`, so the mean is exactly [`Background::bytes`]
    /// for any `α > 1`. Smaller `α` ⇒ heavier tail (rarer, larger
    /// elephants).
    Pareto {
        /// Tail exponent; must exceed 1 for the mean to exist.
        alpha: f64,
    },
}

impl FlowSizes {
    /// Draw one message size with mean `mean_bytes`, never below one
    /// byte. Only the `Pareto` arm consumes RNG draws — `Fixed` keeps
    /// the tenant schedule bitwise that of engines predating
    /// flow-size modelling.
    pub fn sample(self, mean_bytes: u64, rng: &mut SplitMix64) -> u64 {
        match self {
            FlowSizes::Fixed => mean_bytes,
            FlowSizes::Pareto { alpha } => {
                let x_m = mean_bytes as f64 * (alpha - 1.0) / alpha;
                // 1 − U ∈ (0, 1]: the inverse-CDF draw stays finite.
                let u = 1.0 - rng.next_f64();
                (x_m / u.powf(1.0 / alpha)).max(1.0) as u64
            }
        }
    }
}

impl Background {
    /// No background traffic (the default).
    pub fn off() -> Self {
        Background {
            load: 0.0,
            seed: 0,
            bytes: 16 * 1024,
            burst: 4,
            flow_sizes: FlowSizes::Fixed,
        }
    }

    /// Background senders at offered load `load`, driven by `seed`,
    /// with default message size and burst length.
    ///
    /// # Panics
    ///
    /// Panics when `load` is negative or not finite.
    pub fn with_load(load: f64, seed: u64) -> Self {
        assert!(
            load.is_finite() && load >= 0.0,
            "offered load must be finite and non-negative"
        );
        Background {
            load,
            seed,
            ..Background::off()
        }
    }

    /// Switch per-message sizes to a seeded `Pareto(alpha)` draw with
    /// mean [`Background::bytes`] (see [`FlowSizes::Pareto`]).
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` is finite and greater than 1 (the mean
    /// must exist for the load calibration to hold).
    pub fn with_pareto_flows(mut self, alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 1.0,
            "Pareto flow sizes need alpha > 1 (finite mean)"
        );
        self.flow_sizes = FlowSizes::Pareto { alpha };
        self
    }

    /// `true` when this config injects no traffic at all.
    pub fn is_off(&self) -> bool {
        self.load == 0.0
    }
}

impl Default for Background {
    fn default() -> Self {
        Background::off()
    }
}

/// Everything the fabric does besides jitter: route selection policy
/// and background tenant traffic. The default (`Fixed` routing, no
/// background load) reproduces the plain engine bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FabricConfig {
    /// Equal-cost route selection policy.
    pub route_select: RouteSelect,
    /// Background tenant traffic.
    pub background: Background,
}

/// Per-directed-link contention counters (cumulative like
/// [`RunStats`]; reset together with them by [`NetSim::take_stats`]).
/// Covers **all** traffic over the link, foreground and background.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkStats {
    /// Total time messages spent waiting for this link (ns).
    pub wait_ns: f64,
    /// Messages that crossed this link.
    pub messages: u64,
    /// Peak queue depth: most messages simultaneously queued on or
    /// serializing through the link.
    pub max_depth: u32,
}

/// A message handed to the delivery callback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Engine-assigned message id (injection order).
    pub msg: u64,
    /// Sending rank.
    pub from: usize,
    /// Receiving rank.
    pub to: usize,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Caller-defined tag (round number, segment id, …).
    pub tag: u64,
    /// Simulated arrival time in nanoseconds.
    pub time: f64,
}

/// Aggregate statistics of [`NetSim::run`].
///
/// Stats are **cumulative across every `run` call on the same
/// engine**: a protocol that alternates injection and `run` phases
/// keeps adding to the same counters. Use [`NetSim::take_stats`] to
/// read-and-reset between phases when per-phase numbers are wanted.
/// The original four counters (`makespan_ns`, `deliveries`,
/// `bytes_delivered`, `hops_traversed`) cover **foreground** traffic
/// only, so they are bit-identical to the pre-contention engine at
/// `load = 0`; background traffic is tallied separately in the `bg_*`
/// fields, and the wait/queue-depth fields observe contention.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunStats {
    /// Time the last foreground message arrived (ns); 0 for an empty
    /// run.
    pub makespan_ns: f64,
    /// Foreground messages delivered.
    pub deliveries: u64,
    /// Foreground payload bytes delivered (sum over messages, not
    /// hops).
    pub bytes_delivered: u64,
    /// Foreground link traversals.
    pub hops_traversed: u64,
    /// Total time foreground messages spent waiting for busy links
    /// (ns) — the direct measure of contention experienced.
    pub wait_ns: f64,
    /// Longest single foreground link wait (ns).
    pub max_wait_ns: f64,
    /// Foreground hops that found their link busy.
    pub contended_hops: u64,
    /// Foreground traversals of cross-group links (switch↔switch /
    /// switch↔NIC hops, [`Topology::is_cross_group_link`]) — the
    /// NIC/spine crossings topology-aware placement minimises.
    ///
    /// [`Topology::is_cross_group_link`]: crate::Topology::is_cross_group_link
    pub nic_hops: u64,
    /// Foreground payload bytes carried over cross-group links (sum
    /// over such hops).
    pub nic_bytes: u64,
    /// Peak queue depth over every link (any traffic): most messages
    /// simultaneously queued on or serializing through one link.
    pub max_queue_depth: u32,
    /// Background messages delivered.
    pub bg_deliveries: u64,
    /// Background payload bytes delivered.
    pub bg_bytes_delivered: u64,
    /// Background link traversals.
    pub bg_hops_traversed: u64,
    /// Background messages dropped at admission because their route's
    /// backlog exceeded the horizon (finite ingress buffers — keeps an
    /// over-offered fabric stable instead of queueing unboundedly).
    pub bg_dropped: u64,
}

/// In-flight message state. Lives in a recycled slot (the slot index
/// is engine-internal); `id` is the externally visible injection-order
/// id that outlives the slot.
#[derive(Debug, Clone, Copy)]
struct Message {
    id: u64,
    from: usize,
    to: usize,
    bytes: u64,
    tag: u64,
    /// Arena offset of the chosen route `from → to`
    /// ([`Topology::route_handle`], resolved once at injection).
    route_off: u32,
    /// Hop count of the chosen route (the hops themselves are read
    /// from the topology's arena per event).
    route_len: u32,
    /// Which equal-cost route this message rides
    /// ([`Topology::route_hops_nth`] slot; 0 = canonical).
    route_k: u32,
    /// Background (bystander-tenant) message: contends for links but
    /// is never handed to the delivery callback.
    background: bool,
}

/// Sentinel `Event::slot` marking a background-sender tick; the
/// event's `hop` field carries the sender index instead.
const BG_TICK: u32 = u32::MAX;

/// Background admission horizon, in units of a sender's OFF pause: a
/// tick whose chosen route already has more than this much queued work
/// on some link drops its message instead of injecting (finite ingress
/// buffers). Without the drop, a route-funneling config — many senders
/// × Fixed routing through one spine — can be offered more than link
/// capacity and its backlog (and the simulation) would grow without
/// bound. Tick times and route choices are drawn before the admission
/// check, so the *schedule* stays a pure function of `(seed, config)`.
const BG_DROP_HORIZON_PAUSES: f64 = 8.0;

/// One scheduled step: the message in `slot` is ready to enter hop
/// `hop` (or, when `hop == route_len`, to be delivered) at `time`.
/// `slot == BG_TICK` is a background-sender tick instead.
#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    slot: u32,
    hop: u32,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time).is_eq() && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Which priority-queue implementation backs the engine's event
/// queue. The calendar queue is the production default; the
/// `BinaryHeap` path is retained as the reference the property suite
/// diffs deliveries and stats against (the PR 5/6 reference-engine
/// pattern), so the two must stay bitwise interchangeable forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueImpl {
    /// Calendar/bucket queue: amortized O(1) push/pop with buckets
    /// sized from the fabric's smallest positive link latency.
    #[default]
    Calendar,
    /// `std::collections::BinaryHeap<Reverse<Event>>` — the original
    /// engine's queue, kept as the bit-exact reference.
    Heap,
}

impl QueueImpl {
    /// Short name used to key the `net.heap_pop@…` profile histogram.
    pub fn name(self) -> &'static str {
        match self {
            QueueImpl::Calendar => "calendar",
            QueueImpl::Heap => "heap",
        }
    }
}

/// Bucket slots per calendar epoch. With one-α buckets, 256 slots
/// cover a 256-α window of near-future events; anything beyond lands
/// on the overflow list and is promoted when the window drains.
const CAL_BUCKETS: usize = 256;

/// Calendar (bucket) queue over [`Event`]s — the classic amortized
/// O(1) discrete-event queue. Simulated time is cut into fixed-width
/// buckets (`width` = the fabric's smallest positive link α); an
/// *epoch* is the `CAL_BUCKETS`-slot window starting at
/// `epoch_start`. Inserts map a timestamp to its slot: slots inside
/// the epoch go to `buckets[slot % CAL_BUCKETS]`, slots beyond it to
/// the `overflow` far-future list, and slots **before** the scan
/// cursor are clamped into the cursor's bucket (in-bucket ordering
/// still pops them first). Pops leap to the first non-empty bucket
/// via an occupancy bitmap, lazily sort it descending on the
/// cursor's first visit, and take the tail — extracting minima in
/// the exact `Reverse<Event>` order, `(time.total_cmp, seq)`, so pop
/// order is bitwise identical to the `BinaryHeap` engine.
/// When the epoch drains, the queue re-anchors at the earliest
/// overflow event and promotes everything that now fits the window.
///
/// Why the epoch is **fixed** rather than sliding per insert: with a
/// per-insert sliding window, an event parked in overflow (slot just
/// past the window) could be leap-frogged by a later-slot insert
/// that the slid window accepts into a bucket, and the bucket scan
/// would pop the later event first. Anchoring the window only at
/// re-anchor time makes "in overflow" a monotone property: nothing
/// in a bucket is ever later than anything in overflow.
/// Marker for "no bucket is currently sorted".
const CAL_NO_SORTED: u64 = u64::MAX;

#[derive(Debug)]
struct CalendarQueue {
    /// `1 / width` where `width` is the bucket width in simulated ns
    /// (> 0). Stored inverted: multiplying is cheaper than dividing
    /// and equally monotone.
    inv_width: f64,
    buckets: Vec<Vec<Event>>,
    /// Bit `i` set ⇔ `buckets[i]` is non-empty — lets the pop scan
    /// leap empty slots with `trailing_zeros` instead of walking them.
    occupied: [u64; CAL_BUCKETS / 64],
    /// Events whose slot falls beyond the current epoch.
    overflow: Vec<Event>,
    /// Next slot the pop scan starts from.
    cur_slot: u64,
    /// First slot of the current epoch; slots in
    /// `[epoch_start, epoch_start + CAL_BUCKETS)` map to buckets.
    epoch_start: u64,
    /// Slot whose bucket is currently sorted descending (min at the
    /// tail, so pops are `Vec::pop`); [`CAL_NO_SORTED`] when none.
    /// Buckets are sorted lazily, once, when the cursor reaches them;
    /// later same-slot inserts keep order via binary insertion.
    sorted_slot: u64,
    len: usize,
    /// Empty slots the scan cursor leapt over (obs tally).
    rotations: u64,
    /// Events promoted overflow → bucket at re-anchor (obs tally).
    promotions: u64,
}

impl CalendarQueue {
    fn new(width: f64) -> Self {
        debug_assert!(width > 0.0 && width.is_finite());
        CalendarQueue {
            inv_width: 1.0 / width,
            buckets: (0..CAL_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; CAL_BUCKETS / 64],
            overflow: Vec::new(),
            cur_slot: 0,
            epoch_start: 0,
            sorted_slot: CAL_NO_SORTED,
            len: 0,
            rotations: 0,
            promotions: 0,
        }
    }

    /// Slot of timestamp `t`. Monotone non-decreasing in `t` (IEEE
    /// multiplication by a positive constant is monotone, truncation
    /// is monotone, and the `as u64` cast saturates), which is all
    /// the ordering proof needs — exact bucket boundaries don't
    /// matter.
    #[inline]
    fn slot_of(&self, t: f64) -> u64 {
        (t * self.inv_width) as u64
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        if self.len == 0 {
            // Fresh (or drained) queue: re-anchor the epoch here so
            // multi-phase protocols restart with a tight window.
            let s = self.slot_of(ev.time);
            self.epoch_start = s;
            self.cur_slot = s;
            self.sorted_slot = CAL_NO_SORTED;
        }
        self.len += 1;
        let s = self.slot_of(ev.time);
        if s >= self.epoch_start + CAL_BUCKETS as u64 {
            self.overflow.push(ev);
            return;
        }
        // Timestamps at or before the cursor clamp into the cursor's
        // bucket; in-bucket ordering still pops them first.
        let s = s.max(self.cur_slot);
        let b = (s % CAL_BUCKETS as u64) as usize;
        self.occupied[b >> 6] |= 1 << (b & 63);
        let bucket = &mut self.buckets[b];
        if s == self.sorted_slot {
            // The active bucket stays sorted descending: insert before
            // the first element that orders below `ev`.
            let pos = bucket.partition_point(|e| ev < *e);
            bucket.insert(pos, ev);
        } else {
            bucket.push(ev);
        }
    }

    /// First occupied slot in `[cur_slot, end)`, via the bitmap.
    /// Every set bit belongs to that range (pushes clamp to
    /// `>= cur_slot`, skipped slots can never refill), so any hit in
    /// a word at or after the cursor's bit position is the answer.
    #[inline]
    fn next_occupied(&self, end: u64) -> Option<u64> {
        let mut s = self.cur_slot;
        while s < end {
            let idx = (s % CAL_BUCKETS as u64) as usize;
            let w = self.occupied[idx >> 6] >> (idx & 63);
            if w != 0 {
                return Some(s + u64::from(w.trailing_zeros()));
            }
            s += 64 - (idx & 63) as u64; // next word boundary
        }
        None
    }

    /// Advance the cursor to the first non-empty bucket (re-anchoring
    /// from overflow when the epoch drains), sort it if this is the
    /// cursor's first visit, and return its index — the minimum event
    /// is then that bucket's tail.
    #[inline]
    fn find_min(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        loop {
            let end = self.epoch_start + CAL_BUCKETS as u64;
            if let Some(s) = self.next_occupied(end) {
                self.rotations += s - self.cur_slot;
                self.cur_slot = s;
                let b = (s % CAL_BUCKETS as u64) as usize;
                if self.sorted_slot != s {
                    self.sorted_slot = s;
                    if self.buckets[b].len() > 1 {
                        self.buckets[b].sort_unstable_by(|x, y| y.cmp(x));
                    }
                }
                return Some(b);
            }
            // Epoch drained: everything left is in overflow.
            // Re-anchor at the earliest overflow event and promote
            // whatever now fits the fresh window.
            debug_assert!(!self.overflow.is_empty());
            let mut best = 0;
            for i in 1..self.overflow.len() {
                if self.overflow[i] < self.overflow[best] {
                    best = i;
                }
            }
            let anchor = self.slot_of(self.overflow[best].time);
            self.epoch_start = anchor;
            self.cur_slot = anchor;
            self.sorted_slot = CAL_NO_SORTED;
            let end = anchor + CAL_BUCKETS as u64;
            let mut i = 0;
            while i < self.overflow.len() {
                let s = self.slot_of(self.overflow[i].time);
                if s < end {
                    let ev = self.overflow.swap_remove(i);
                    let b = (s % CAL_BUCKETS as u64) as usize;
                    self.occupied[b >> 6] |= 1 << (b & 63);
                    self.buckets[b].push(ev);
                    self.promotions += 1;
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Remove the tail (minimum) of bucket `b`, maintaining the
    /// occupancy bitmap.
    #[inline]
    fn take_tail(&mut self, b: usize) -> Event {
        let ev = self.buckets[b].pop().expect("find_min returned a non-empty bucket");
        if self.buckets[b].is_empty() {
            self.occupied[b >> 6] &= !(1 << (b & 63));
        }
        self.len -= 1;
        ev
    }

    #[inline]
    fn pop(&mut self) -> Option<Event> {
        let b = self.find_min()?;
        Some(self.take_tail(b))
    }

    fn peek_time(&mut self) -> Option<f64> {
        let b = self.find_min()?;
        Some(self.buckets[b].last().expect("non-empty").time)
    }
}

/// The engine's priority queue behind a common face: the calendar
/// queue in production, the `BinaryHeap` as the bit-exact reference
/// (see [`QueueImpl`]).
#[derive(Debug)]
enum EventQueue {
    Heap(BinaryHeap<Reverse<Event>>),
    Calendar(CalendarQueue),
}

impl EventQueue {
    fn new(which: QueueImpl, bucket_width: f64) -> Self {
        match which {
            QueueImpl::Heap => EventQueue::Heap(BinaryHeap::new()),
            QueueImpl::Calendar => EventQueue::Calendar(CalendarQueue::new(bucket_width)),
        }
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse(ev)),
            EventQueue::Calendar(c) => c.push(ev),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Event> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(ev)| ev),
            EventQueue::Calendar(c) => c.pop(),
        }
    }

    #[inline]
    fn peek_time(&mut self) -> Option<f64> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|&Reverse(ev)| ev.time),
            EventQueue::Calendar(c) => c.peek_time(),
        }
    }

    fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Calendar(c) => c.len,
        }
    }

    /// Take (read and reset) the calendar-side obs tallies:
    /// `(bucket rotations, overflow promotions)`. Zero for the heap.
    fn take_cal_tallies(&mut self) -> (u64, u64) {
        match self {
            EventQueue::Heap(_) => (0, 0),
            EventQueue::Calendar(c) => (
                std::mem::take(&mut c.rotations),
                std::mem::take(&mut c.promotions),
            ),
        }
    }
}

/// Per-engine observability capture. The three global switches
/// (tracing / counters / profiling) are sampled **once at engine
/// construction** into plain `bool` fields, so the event loop's
/// disabled path costs a predictable non-atomic branch — and a sim is
/// either fully observed or fully unobserved, never half. Counter
/// tallies accumulate locally and flush into the global sink once per
/// [`NetSim::run`], not per event.
///
/// Nothing in here feeds back into the simulation: timestamps, seeds,
/// route picks and stats are computed identically whether or not any
/// flag is set (the collectives determinism battery pins this).
#[derive(Debug)]
struct ObsState {
    /// Simulated-clock trace events wanted ([`trace::enabled`] at
    /// construction time).
    tracing: bool,
    /// Counter tallies wanted ([`counters::enabled`]).
    counting: bool,
    /// Wall-clock pop timing wanted ([`profile::enabled`]).
    profiling: bool,
    /// Trace process group: `run_index + 1` inside an executor
    /// fan-out, 0 elsewhere (see [`trace::current_pid`]).
    pid: u64,
    /// Which link/rank lanes already carry a `thread_name` record
    /// (lazy so only used lanes clutter the viewer). Empty unless
    /// tracing.
    link_named: Vec<bool>,
    rank_named: Vec<bool>,
    // Local counter tallies, flushed once per `run`.
    pushes: u64,
    pops: u64,
    peak: u64,
    route_lookups: u64,
    wire_bytes: u64,
    nic_cross_bytes: u64,
    /// Wall-clock heap-pop latency histogram for this engine, merged
    /// into the global `net.heap_pop@load=…` phase per `run`.
    pop_stat: PhaseStat,
}

impl ObsState {
    fn capture(topo: &Topology) -> Self {
        let tracing = trace::enabled();
        ObsState {
            tracing,
            counting: counters::enabled(),
            profiling: profile::enabled(),
            pid: trace::current_pid(),
            link_named: if tracing { vec![false; topo.num_links()] } else { Vec::new() },
            rank_named: if tracing { vec![false; topo.ranks()] } else { Vec::new() },
            pushes: 0,
            pops: 0,
            peak: 0,
            route_lookups: 0,
            wire_bytes: 0,
            nic_cross_bytes: 0,
            pop_stat: PhaseStat::default(),
        }
    }

    /// `true` when any per-event work is wanted at all.
    fn any(&self) -> bool {
        self.tracing || self.counting || self.profiling
    }
}

/// One background sender: its own gap RNG stream plus the on/off
/// cadence derived from the configured offered load.
#[derive(Debug)]
struct BgSender {
    rank: usize,
    rng: SplitMix64,
    /// Mean in-burst inter-send gap: uplink serialization time of one
    /// background message divided by `2·load`, so the ~50% ON duty
    /// cycle lands utilization ≈ `load`.
    gap_ns: f64,
    /// Mean OFF pause after a burst: `burst · gap_ns`.
    pause_ns: f64,
    burst_left: u32,
}

/// The discrete-event engine. Drive it by injecting sends (possibly
/// from inside the delivery callback) and calling [`NetSim::run`].
#[derive(Debug)]
pub struct NetSim<'t> {
    topo: &'t Topology,
    jitter: JitterModel,
    fabric: FabricConfig,
    /// Which queue implementation `queue` runs on.
    queue_impl: QueueImpl,
    queue: EventQueue,
    /// Slot-addressed in-flight messages; delivered slots are pushed
    /// onto `free` and reused by later sends, so the live set — not
    /// the whole run history — bounds memory.
    messages: Vec<Message>,
    free: Vec<u32>,
    /// Next external message id (injection order; never recycled).
    next_id: u64,
    /// `link_busy_until[link_id]`: time the directed link becomes free.
    link_busy_until: Vec<f64>,
    seq: u64,
    stats: RunStats,
    /// Foreground messages in flight; background ticks stop
    /// rescheduling once this hits zero, so `run` always terminates.
    fg_live: u64,
    /// Background senders (empty when `background.is_off()`).
    bg: Vec<BgSender>,
    /// Background tick events currently in the queue.
    live_ticks: u32,
    /// Per-link cumulative wait (ns), all traffic.
    link_wait_ns: Vec<f64>,
    /// Per-link message count, all traffic.
    link_msgs: Vec<u64>,
    /// Per-link *current* queue depth (messages queued on or
    /// serializing through the link) — physical state, not a stat.
    link_depth: Vec<u32>,
    /// Per-link peak of `link_depth`.
    link_max_depth: Vec<u32>,
    /// Per-link serialization-finish times, oldest first. Because a
    /// link's `busy_until` only ever grows, each link's finish times
    /// are pushed in non-decreasing order — so expiring them is a
    /// front-pop walk on entry to that link, no priority queue needed.
    /// Depth decrements commute, so expiring a link's drains only when
    /// *that* link is entered yields the same depth at every increment
    /// (and the same peaks) as the old global drain heap.
    link_drains: Vec<VecDeque<f64>>,
    /// Observability capture (off by default; flags sampled once at
    /// construction — see [`ObsState`]).
    obs: ObsState,
}

impl<'t> NetSim<'t> {
    /// A fresh engine over `topo` with the given timing-noise model,
    /// fixed routing, and no background traffic.
    pub fn new(topo: &'t Topology, jitter: JitterModel) -> Self {
        NetSim::with_fabric(topo, jitter, FabricConfig::default())
    }

    /// A fresh engine with explicit routing policy and background
    /// traffic. `FabricConfig::default()` makes this identical to
    /// [`NetSim::new`].
    pub fn with_fabric(topo: &'t Topology, jitter: JitterModel, fabric: FabricConfig) -> Self {
        NetSim::with_queue(topo, jitter, fabric, QueueImpl::default())
    }

    /// A fresh engine on an explicit queue implementation — the hook
    /// the equivalence property tests and `net_engine` bench rows use
    /// to diff the calendar queue against the `BinaryHeap` reference.
    /// Every configuration must produce bitwise-identical deliveries
    /// and stats under either implementation.
    pub fn with_queue(
        topo: &'t Topology,
        jitter: JitterModel,
        fabric: FabricConfig,
        queue_impl: QueueImpl,
    ) -> Self {
        let p = topo.ranks();
        let bgc = fabric.background;
        let bg: Vec<BgSender> = if bgc.load > 0.0 && p > 1 {
            (0..p)
                .map(|r| {
                    // Calibrate off the sender's uplink (first hop of
                    // any route out of rank r).
                    let uplink = topo.route_hops(r, usize::from(r == 0))[0].link;
                    let serialize = (uplink.ns_per_byte * bgc.bytes as f64).max(1.0);
                    let gap_ns = serialize / (2.0 * bgc.load);
                    BgSender {
                        rank: r,
                        rng: SplitMix64::new(derive_seed(bgc.seed, r as u64)),
                        gap_ns,
                        pause_ns: bgc.burst as f64 * gap_ns,
                        burst_left: bgc.burst,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        let obs = ObsState::capture(topo);
        if obs.tracing {
            let label = if obs.pid == 0 {
                topo.name().to_string()
            } else {
                format!("run {} · {}", obs.pid - 1, topo.name())
            };
            trace::name_process(obs.pid, label);
        }
        // Bucket width for the calendar queue: the smallest positive
        // link α (causally related events are at least one α apart),
        // falling back to 1 ns on a latency-free fabric.
        let width = topo.min_latency_ns().unwrap_or(1.0);
        NetSim {
            topo,
            jitter,
            fabric,
            obs,
            queue_impl,
            queue: EventQueue::new(queue_impl, width),
            messages: Vec::new(),
            free: Vec::new(),
            next_id: 0,
            link_busy_until: vec![0.0; topo.num_links()],
            seq: 0,
            stats: RunStats::default(),
            fg_live: 0,
            bg,
            live_ticks: 0,
            link_wait_ns: vec![0.0; topo.num_links()],
            link_msgs: vec![0; topo.num_links()],
            link_depth: vec![0; topo.num_links()],
            link_max_depth: vec![0; topo.num_links()],
            link_drains: vec![VecDeque::new(); topo.num_links()],
        }
    }

    /// The queue implementation this engine runs on.
    pub fn queue_impl(&self) -> QueueImpl {
        self.queue_impl
    }

    /// The topology this engine simulates.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// The routing/background configuration this engine runs under.
    pub fn fabric(&self) -> FabricConfig {
        self.fabric
    }

    /// Contention counters for one directed link (cumulative; reset by
    /// [`NetSim::take_stats`] together with the aggregate stats).
    ///
    /// # Panics
    ///
    /// Panics when `link_id >= topology().num_links()`.
    pub fn link_stats(&self, link_id: usize) -> LinkStats {
        LinkStats {
            wait_ns: self.link_wait_ns[link_id],
            messages: self.link_msgs[link_id],
            max_depth: self.link_max_depth[link_id],
        }
    }

    /// Inject a `bytes`-byte message from rank `from` to rank `to` at
    /// simulated time `at_ns`. Returns the message id (injection
    /// order — ids are never reused even though the internal slot is
    /// recycled after delivery). A self-send (`from == to`) delivers
    /// at `at_ns` with no link traffic.
    pub fn send_at(&mut self, at_ns: f64, from: usize, to: usize, bytes: u64, tag: u64) -> u64 {
        assert!(at_ns.is_finite() && at_ns >= 0.0, "send time must be finite and non-negative");
        self.fg_live += 1;
        self.inject(at_ns, from, to, bytes, tag, false)
    }

    /// Seeded equal-cost route pick for message `id`: a pure function
    /// of `(route seed, id)`, independent of event interleaving.
    fn pick_route(&self, id: u64, from: usize, to: usize) -> u32 {
        match self.fabric.route_select {
            RouteSelect::Fixed => 0,
            RouteSelect::SeededEcmp { seed } => {
                let n = self.topo.route_count(from, to);
                if n <= 1 {
                    0
                } else {
                    let mut g = SplitMix64::new(seed ^ id.wrapping_mul(0xA24B_AED4_963E_E407));
                    g.next_u64(); // decorrelate nearby keys
                    g.next_below(n as u64) as u32
                }
            }
        }
    }

    /// Tally one event-heap push (and the resulting heap length) into
    /// the engine-local counters.
    #[inline]
    fn note_push(&mut self) {
        if self.obs.counting {
            self.obs.pushes += 1;
            let len = self.queue.len() as u64;
            if len > self.obs.peak {
                self.obs.peak = len;
            }
        }
    }

    /// Trace lane for rank `r`, naming it on first use.
    fn rank_lane(&mut self, r: usize) -> u64 {
        if !self.obs.rank_named[r] {
            self.obs.rank_named[r] = true;
            trace::name_thread(self.obs.pid, trace::RANK_TID_BASE + r as u64, format!("rank {r}"));
        }
        trace::RANK_TID_BASE + r as u64
    }

    /// Trace lane for directed link `l`, naming it on first use.
    fn link_lane(&mut self, l: usize) -> u64 {
        if !self.obs.link_named[l] {
            self.obs.link_named[l] = true;
            let label = format!("L{l} {}", self.topo.link_label(l));
            trace::name_thread(self.obs.pid, l as u64, label);
        }
        l as u64
    }

    fn inject(
        &mut self,
        at_ns: f64,
        from: usize,
        to: usize,
        bytes: u64,
        tag: u64,
        background: bool,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let route_k = self.pick_route(id, from, to);
        let (route_off, route_len) = self.topo.route_handle(from, to, route_k as usize);
        if self.obs.counting {
            self.obs.route_lookups += 1;
        }
        if self.obs.tracing {
            let lane = self.rank_lane(from);
            let (name, cat) = if background { ("bg_inject", "bg") } else { ("inject", "net") };
            trace::instant(
                self.obs.pid,
                lane,
                at_ns,
                name,
                cat,
                vec![
                    ("msg", id.into()),
                    ("to", to.into()),
                    ("bytes", bytes.into()),
                    ("tag", tag.into()),
                    ("route", route_k.into()),
                ],
            );
        }
        let message = Message {
            id,
            from,
            to,
            bytes,
            tag,
            route_off,
            route_len,
            route_k,
            background,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.messages[s as usize] = message;
                s
            }
            None => {
                self.messages.push(message);
                (self.messages.len() - 1) as u32
            }
        };
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event {
            time: at_ns,
            seq,
            slot,
            hop: 0,
        });
        self.note_push();
        id
    }

    /// Put one tick per background sender into the queue, anchored to
    /// the earliest pending event. No-op unless background traffic is
    /// configured, foreground work is pending, and no ticks are live
    /// (so multi-phase protocols re-arm cleanly between `run`s).
    fn seed_bg_ticks(&mut self) {
        if self.bg.is_empty() || self.live_ticks > 0 || self.fg_live == 0 {
            return;
        }
        let Some(t0) = self.queue.peek_time() else {
            return;
        };
        for s in 0..self.bg.len() {
            let delay = self.bg[s].rng.next_f64() * self.bg[s].pause_ns;
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Event {
                time: t0 + delay,
                seq,
                slot: BG_TICK,
                hop: s as u32,
            });
            self.note_push();
            self.live_ticks += 1;
        }
    }

    /// Fire one background tick: inject a message to a seeded
    /// destination and schedule the next tick (gap within a burst,
    /// pause after one) — unless foreground traffic has drained, in
    /// which case the tick retires so the queue can empty. A message
    /// whose route is backlogged beyond the admission horizon is
    /// dropped (after its RNG draws, so the schedule stays pure).
    fn bg_tick(&mut self, at_ns: f64, sender: usize) {
        if self.fg_live == 0 {
            self.live_ticks -= 1;
            return;
        }
        let p = self.topo.ranks();
        let from = self.bg[sender].rank;
        let bgc = self.fabric.background;
        let mut to = self.bg[sender].rng.next_below(p as u64 - 1) as usize;
        if to >= from {
            to += 1;
        }
        // Size draw after the destination draw, before admission: the
        // schedule (and any drop decision) stays a pure function of
        // the seed, and `Fixed` consumes no draw at all.
        let bytes = bgc.flow_sizes.sample(bgc.bytes, &mut self.bg[sender].rng);
        let route_k = self.pick_route(self.next_id, from, to);
        let horizon = BG_DROP_HORIZON_PAUSES * self.bg[sender].pause_ns;
        let admitted = self
            .topo
            .route_hops_nth(from, to, route_k as usize)
            .iter()
            .all(|h| self.link_busy_until[h.link_id as usize] - at_ns <= horizon);
        if self.obs.counting {
            self.obs.route_lookups += 1;
        }
        if admitted {
            self.inject(at_ns, from, to, bytes, 0, true);
        } else {
            self.stats.bg_dropped += 1;
            if self.obs.tracing {
                let lane = self.rank_lane(from);
                trace::instant(
                    self.obs.pid,
                    lane,
                    at_ns,
                    "bg_drop",
                    "bg",
                    vec![("to", to.into()), ("route", route_k.into())],
                );
            }
        }
        let s = &mut self.bg[sender];
        s.burst_left -= 1;
        let base = if s.burst_left == 0 {
            s.burst_left = self.fabric.background.burst;
            s.pause_ns
        } else {
            s.gap_ns
        };
        let next = at_ns + base * (0.5 + s.rng.next_f64());
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event {
            time: next,
            seq,
            slot: BG_TICK,
            hop: sender as u32,
        });
        self.note_push();
    }

    /// Process every pending event in time order, invoking
    /// `on_deliver` for each message that reaches its destination. The
    /// callback may inject further sends. Returns the run statistics
    /// — **cumulative** across multiple `run` calls on the same engine
    /// (see [`NetSim::take_stats`] for per-phase numbers).
    pub fn run<F>(&mut self, mut on_deliver: F) -> RunStats
    where
        F: FnMut(&mut NetSim<'t>, Delivery),
    {
        self.seed_bg_ticks();
        let run_t0 = if self.obs.profiling { Some(std::time::Instant::now()) } else { None };
        loop {
            // Pop timing is the one place observability reads a wall
            // clock inside the event loop; it is measured *around* the
            // pop and never feeds back into simulated time.
            let popped = if self.obs.profiling {
                let t0 = std::time::Instant::now();
                let p = self.queue.pop();
                if p.is_some() {
                    self.obs.pop_stat.record(t0.elapsed().as_nanos() as u64);
                }
                p
            } else {
                self.queue.pop()
            };
            let Some(ev) = popped else { break };
            if self.obs.counting {
                self.obs.pops += 1;
            }
            if ev.slot == BG_TICK {
                self.bg_tick(ev.time, ev.hop as usize);
                continue;
            }
            let m = self.messages[ev.slot as usize];
            if ev.hop == m.route_len {
                // Retire the slot before the callback runs so chained
                // sends can reuse it immediately.
                self.free.push(ev.slot);
                if m.background {
                    self.stats.bg_deliveries += 1;
                    self.stats.bg_bytes_delivered += m.bytes;
                    continue;
                }
                self.fg_live -= 1;
                let delivery = Delivery {
                    msg: m.id,
                    from: m.from,
                    to: m.to,
                    bytes: m.bytes,
                    tag: m.tag,
                    time: ev.time,
                };
                self.stats.deliveries += 1;
                self.stats.bytes_delivered += m.bytes;
                self.stats.makespan_ns = self.stats.makespan_ns.max(ev.time);
                if self.obs.tracing {
                    let lane = self.rank_lane(m.to);
                    trace::instant(
                        self.obs.pid,
                        lane,
                        ev.time,
                        "deliver",
                        "net",
                        vec![
                            ("msg", m.id.into()),
                            ("from", m.from.into()),
                            ("bytes", m.bytes.into()),
                            ("tag", m.tag.into()),
                        ],
                    );
                }
                on_deliver(self, delivery);
                continue;
            }
            // Enter the next link: wait for it to free, hold it for the
            // serialization time, then propagate (+ jitter).
            let hop = self.topo.route_slice((m.route_off, m.route_len))[ev.hop as usize];
            let l = hop.link_id as usize;
            // Queue-depth accounting: retire every serialization on
            // *this* link that finished by now, then count this
            // message as queued.
            let dq = &mut self.link_drains[l];
            while dq.front().is_some_and(|&t| t <= ev.time) {
                dq.pop_front();
            }
            let busy = &mut self.link_busy_until[l];
            let start = ev.time.max(*busy);
            let wait = start - ev.time;
            let serialize = hop.link.ns_per_byte * m.bytes as f64;
            *busy = start + serialize;
            let jitter =
                self.jitter
                    .sample_ns(m.id, u64::from(ev.hop), serialize + hop.link.latency_ns);
            let arrive = start + serialize + hop.link.latency_ns + jitter;
            self.link_drains[l].push_back(start + serialize);
            let depth = self.link_drains[l].len() as u32;
            self.link_depth[l] = depth;
            if depth > self.link_max_depth[l] {
                self.link_max_depth[l] = depth;
            }
            if depth > self.stats.max_queue_depth {
                self.stats.max_queue_depth = depth;
            }
            self.link_wait_ns[l] += wait;
            self.link_msgs[l] += 1;
            if m.background {
                self.stats.bg_hops_traversed += 1;
            } else {
                self.stats.hops_traversed += 1;
                self.stats.wait_ns += wait;
                if self.topo.is_cross_group_link(l) {
                    self.stats.nic_hops += 1;
                    self.stats.nic_bytes += m.bytes;
                    if self.obs.counting {
                        self.obs.nic_cross_bytes += m.bytes;
                    }
                }
                if wait > 0.0 {
                    self.stats.contended_hops += 1;
                    if wait > self.stats.max_wait_ns {
                        self.stats.max_wait_ns = wait;
                    }
                }
            }
            if self.obs.any() {
                self.note_hop(&m, ev.hop, l, start, wait, serialize);
            }
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Event {
                time: arrive,
                seq,
                slot: ev.slot,
                hop: ev.hop + 1,
            });
            self.note_push();
        }
        self.flush_obs(run_t0);
        self.stats
    }

    /// Per-hop observability: wire/route tallies plus the link-lane
    /// trace span (`ts` = serialization start, `dur` = serialization
    /// time — link spans never overlap because links serialize, so
    /// every lane renders as a clean occupancy timeline and queueing
    /// shows up as the gap between a message's hops).
    fn note_hop(&mut self, m: &Message, hop_idx: u32, l: usize, start: f64, wait: f64, serialize: f64) {
        if self.obs.counting {
            self.obs.route_lookups += 1;
            self.obs.wire_bytes += m.bytes;
        }
        if self.obs.tracing {
            let lane = self.link_lane(l);
            let cat = if m.background { "bg" } else { "net" };
            trace::complete(
                self.obs.pid,
                lane,
                start,
                serialize,
                format!("m{}", m.id),
                cat,
                vec![
                    ("msg", m.id.into()),
                    ("hop", hop_idx.into()),
                    ("from", m.from.into()),
                    ("to", m.to.into()),
                    ("bytes", m.bytes.into()),
                    ("wait_ns", wait.into()),
                    ("route", m.route_k.into()),
                    ("depth", self.link_depth[l].into()),
                ],
            );
        }
    }

    /// Flush engine-local observability tallies into the global sinks;
    /// called once at the end of every [`NetSim::run`].
    fn flush_obs(&mut self, run_t0: Option<std::time::Instant>) {
        if let Some(t0) = run_t0 {
            let dt = t0.elapsed().as_nanos() as u64;
            counters::add(Counter::NetRunWallNs, dt);
            profile::record("net.run", dt);
            if self.obs.pop_stat.count > 0 {
                // Key the pop histogram by offered load and queue
                // implementation, so one report answers both "does pop
                // dominate at high load?" and "did the calendar queue
                // actually shrink the pop cost?" directly.
                let key = format!(
                    "net.heap_pop@load={:.2},queue={}",
                    self.fabric.background.load,
                    self.queue_impl.name()
                );
                profile::merge(&key, &self.obs.pop_stat);
                counters::add(Counter::HeapPopWallNs, self.obs.pop_stat.total_ns);
                self.obs.pop_stat = PhaseStat::default();
            }
        }
        if self.obs.counting {
            counters::add(Counter::HeapPush, std::mem::take(&mut self.obs.pushes));
            counters::add(Counter::HeapPop, std::mem::take(&mut self.obs.pops));
            counters::record_heap_peak(std::mem::take(&mut self.obs.peak));
            counters::add(Counter::RouteLookup, std::mem::take(&mut self.obs.route_lookups));
            counters::add(Counter::WireBytes, std::mem::take(&mut self.obs.wire_bytes));
            counters::add(Counter::NicCrossBytes, std::mem::take(&mut self.obs.nic_cross_bytes));
            let (rot_q, promo_q) = self.queue.take_cal_tallies();
            counters::add(Counter::BucketRotation, rot_q);
            counters::add(Counter::OverflowPromotion, promo_q);
        }
    }

    /// The statistics accumulated so far, **resetting** them to zero —
    /// so a multi-phase protocol (inject, `run`, inject, `run`, …) can
    /// report per-phase numbers instead of the cumulative totals that
    /// [`NetSim::run`] returns. Per-link [`LinkStats`] counters reset
    /// too (read them first if wanted per phase); pending events, link
    /// busy/queue-depth state and message ids are untouched.
    pub fn take_stats(&mut self) -> RunStats {
        self.link_wait_ns.fill(0.0);
        self.link_msgs.fill(0);
        self.link_max_depth.fill(0);
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn topo() -> Topology {
        Topology::flat_switch(4, LinkSpec::new(100.0, 1.0))
    }

    #[test]
    fn single_message_cost_matches_path_cost() {
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::none());
        sim.send_at(0.0, 0, 1, 8, 0);
        let mut seen = Vec::new();
        let stats = sim.run(|_, d| seen.push(d));
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].from, 0);
        assert_eq!(seen[0].to, 1);
        // 2 hops × (100 + 8) ns, no contention
        assert!((seen[0].time - 216.0).abs() < 1e-9);
        assert_eq!(stats.hops_traversed, 2);
        assert_eq!(stats.bytes_delivered, 8);
    }

    #[test]
    fn nic_counters_tally_only_cross_group_foreground_hops() {
        // Flat switch: no cross-group links at all.
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::none());
        sim.send_at(0.0, 0, 1, 64, 0);
        let stats = sim.run(|_, _| {});
        assert_eq!(stats.nic_hops, 0);
        assert_eq!(stats.nic_bytes, 0);
        // Hierarchical: a same-node message never crosses; a cross-node
        // message crosses on its 4 middle (sw→nic→top→nic→sw) hops.
        let h = Topology::hierarchical(2, 2, LinkSpec::new(100.0, 1.0), LinkSpec::new(100.0, 1.0), LinkSpec::new(100.0, 1.0));
        let mut sim = NetSim::new(&h, JitterModel::none());
        sim.send_at(0.0, 0, 1, 64, 0);
        let intra = sim.run(|_, _| {});
        assert_eq!(sim.take_stats(), intra);
        assert_eq!(intra.nic_hops, 0);
        sim.send_at(0.0, 0, 2, 64, 0);
        let inter = sim.run(|_, _| {});
        assert_eq!(inter.nic_hops, 4);
        assert_eq!(inter.nic_bytes, 4 * 64);
    }

    #[test]
    fn shared_link_serializes_fan_in() {
        // Ranks 1, 2, 3 all send to 0 at t=0: the switch→rank-0 link is
        // shared, so arrivals are spaced by the serialization time.
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::none());
        for r in 1..4 {
            sim.send_at(0.0, r, 0, 1000, 0);
        }
        let mut times = Vec::new();
        sim.run(|_, d| times.push(d.time));
        assert_eq!(times.len(), 3);
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        // Gaps of exactly β·bytes = 1000 ns between consecutive arrivals.
        assert!((sorted[1] - sorted[0] - 1000.0).abs() < 1e-9, "{sorted:?}");
        assert!((sorted[2] - sorted[1] - 1000.0).abs() < 1e-9, "{sorted:?}");
    }

    #[test]
    fn zero_jitter_replays_identically() {
        let t = topo();
        let run = || {
            let mut sim = NetSim::new(&t, JitterModel::none());
            for r in 1..4 {
                sim.send_at(r as f64, r, 0, 64, r as u64);
            }
            let mut log = Vec::new();
            sim.run(|_, d| log.push((d.msg, d.tag, d.time.to_bits())));
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn jitter_seeds_change_timing_but_not_payloads() {
        let t = topo();
        let run = |seed| {
            let mut sim = NetSim::new(&t, JitterModel::uniform(0.5, seed));
            for r in 1..4 {
                sim.send_at(0.0, r, 0, 64, r as u64);
            }
            let mut log = Vec::new();
            sim.run(|_, d| log.push((d.tag, d.time)));
            log
        };
        let a = run(1);
        let b = run(2);
        let tags = |log: &[(u64, f64)]| {
            let mut t: Vec<u64> = log.iter().map(|&(tag, _)| tag).collect();
            t.sort_unstable();
            t
        };
        assert_eq!(tags(&a), tags(&b), "same messages must arrive");
        assert!(
            a.iter().zip(&b).any(|(x, y)| x.1 != y.1),
            "different seeds should perturb some timestamp"
        );
        // and the same seed replays exactly
        let a2 = run(1);
        assert_eq!(
            a.iter().map(|&(_, t)| t.to_bits()).collect::<Vec<_>>(),
            a2.iter().map(|&(_, t)| t.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn callback_can_chain_sends() {
        // 1 → 0, then on delivery 0 → 2: a two-leg relay.
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::none());
        sim.send_at(0.0, 1, 0, 8, 7);
        let mut legs = Vec::new();
        sim.run(|sim, d| {
            legs.push((d.from, d.to, d.time));
            if d.tag == 7 && d.to == 0 {
                sim.send_at(d.time, 0, 2, 8, 8);
            }
        });
        assert_eq!(legs.len(), 2);
        assert_eq!(legs[1].0, 0);
        assert_eq!(legs[1].1, 2);
        assert!(legs[1].2 > legs[0].2);
    }

    #[test]
    fn message_ids_stay_injection_ordered_across_slot_recycling() {
        // A long relay: each delivery triggers the next send, so every
        // message after the first reuses the same recycled slot. Ids
        // must still count up in injection order.
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::none());
        let first = sim.send_at(0.0, 0, 1, 8, 0);
        assert_eq!(first, 0);
        let mut ids = Vec::new();
        sim.run(|sim, d| {
            ids.push(d.msg);
            if d.tag < 20 {
                let id = sim.send_at(d.time, d.to, (d.to + 1) % 4, 8, d.tag + 1);
                assert_eq!(id, d.tag + 1, "ids are injection-ordered");
            }
        });
        assert_eq!(ids, (0..=20).collect::<Vec<_>>());
    }

    #[test]
    fn take_stats_resets_for_per_phase_reporting() {
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::none());
        sim.send_at(0.0, 0, 1, 100, 0);
        let phase1 = sim.run(|_, _| {});
        assert_eq!(phase1.deliveries, 1);
        assert_eq!(sim.take_stats(), phase1);
        // Counters restart from zero; message ids keep counting up.
        let id = sim.send_at(0.0, 1, 2, 50, 0);
        assert_eq!(id, 1);
        let phase2 = sim.run(|_, _| {});
        assert_eq!(phase2.deliveries, 1);
        assert_eq!(phase2.bytes_delivered, 50);
        // run() without take_stats stays cumulative.
        sim.send_at(0.0, 2, 3, 25, 0);
        let cumulative = sim.run(|_, _| {});
        assert_eq!(cumulative.deliveries, 2);
        assert_eq!(cumulative.bytes_delivered, 75);
    }

    #[test]
    fn default_fabric_is_bitwise_the_plain_engine() {
        let t = topo();
        let run = |mut sim: NetSim<'_>| {
            for r in 1..4 {
                sim.send_at(r as f64, r, 0, 777, r as u64);
            }
            let mut log = Vec::new();
            let stats = sim.run(|_, d| log.push((d.msg, d.tag, d.time.to_bits())));
            (log, stats)
        };
        let plain = run(NetSim::new(&t, JitterModel::uniform(0.4, 11)));
        let fabric = run(NetSim::with_fabric(
            &t,
            JitterModel::uniform(0.4, 11),
            FabricConfig::default(),
        ));
        assert_eq!(plain, fabric);
    }

    #[test]
    fn fan_in_queue_depth_and_wait_are_counted() {
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::none());
        for r in 1..4 {
            sim.send_at(0.0, r, 0, 1000, 0);
        }
        let stats = sim.run(|_, _| {});
        // All three hit the shared sw→0 link at the same instant: one
        // serializes, two queue behind it → depth 3, waits of exactly
        // 1·serialize and 2·serialize.
        assert_eq!(stats.max_queue_depth, 3);
        assert_eq!(stats.contended_hops, 2);
        assert!((stats.wait_ns - 3000.0).abs() < 1e-9, "{}", stats.wait_ns);
        assert!((stats.max_wait_ns - 2000.0).abs() < 1e-9);
        // Per-link: the contended link saw all 3 messages and all the
        // wait; each rank→sw uplink saw exactly its own message.
        let contended = t.route_hops(1, 0)[1].link_id as usize;
        let ls = sim.link_stats(contended);
        assert_eq!(ls.messages, 3);
        assert_eq!(ls.max_depth, 3);
        assert!((ls.wait_ns - 3000.0).abs() < 1e-9);
        let uplink = t.route_hops(1, 0)[0].link_id as usize;
        assert_eq!(sim.link_stats(uplink).messages, 1);
        assert_eq!(sim.link_stats(uplink).max_depth, 1);
    }

    #[test]
    fn background_traffic_contends_but_never_reaches_the_callback() {
        let t = topo();
        let fabric = FabricConfig {
            background: Background::with_load(0.6, 42),
            ..FabricConfig::default()
        };
        // Modest staggered sends: in a quiet fabric they never touch,
        // so every bit of foreground wait is inflicted by the tenants.
        let workload = |sim: &mut NetSim<'_>| {
            for i in 0..30u64 {
                sim.send_at(i as f64 * 30_000.0, 1 + (i as usize % 3), 0, 20_000, i);
            }
        };
        let mut sim = NetSim::with_fabric(&t, JitterModel::none(), fabric);
        workload(&mut sim);
        let mut log = Vec::new();
        let stats = sim.run(|_, d| log.push(d.tag));
        // Exactly the 30 foreground messages reach the callback; the
        // background tenants only show in bg_* stats.
        log.sort_unstable();
        assert_eq!(log, (0..30).collect::<Vec<u64>>());
        assert_eq!(stats.deliveries, 30);
        assert_eq!(stats.bytes_delivered, 30 * 20_000);
        assert!(stats.bg_deliveries > 0, "{stats:?}");
        assert_eq!(stats.bg_bytes_delivered, stats.bg_deliveries * 16 * 1024);
        assert!(stats.bg_hops_traversed >= 2 * stats.bg_deliveries);
        // Contention from the bystanders delays the foreground run.
        let mut quiet = NetSim::new(&t, JitterModel::none());
        workload(&mut quiet);
        let quiet_stats = quiet.run(|_, _| {});
        assert_eq!(quiet_stats.wait_ns, 0.0, "workload must be self-contention-free");
        assert!(stats.wait_ns > 0.0);
        assert!(stats.contended_hops > 0);
        assert!(stats.makespan_ns >= quiet_stats.makespan_ns);
    }

    #[test]
    fn multi_phase_stats_stay_cumulative_with_tenants_live() {
        let t = topo();
        let fabric = FabricConfig {
            background: Background::with_load(0.6, 42),
            ..FabricConfig::default()
        };
        let phase = |sim: &mut NetSim<'_>, base: f64| {
            for i in 0..10u64 {
                sim.send_at(base + i as f64 * 30_000.0, 1 + (i as usize % 3), 0, 20_000, i);
            }
            sim.run(|_, _| {})
        };
        // Two phases back to back: the tenants re-arm at each run()
        // entry, and without take_stats every counter — foreground,
        // background, and the queue/wait family — keeps accumulating.
        let mut sim = NetSim::with_fabric(&t, JitterModel::none(), fabric);
        let first = phase(&mut sim, 0.0);
        let both = phase(&mut sim, 1e9);
        assert_eq!(first.deliveries, 10);
        assert_eq!(both.deliveries, 20);
        assert!(first.bg_deliveries > 0);
        assert!(both.bg_deliveries > first.bg_deliveries);
        assert!(both.bg_hops_traversed > first.bg_hops_traversed);
        assert!(both.wait_ns >= first.wait_ns);
        assert!(both.max_queue_depth >= first.max_queue_depth);
        // The same two phases replay bitwise on a fresh engine.
        let mut replay = NetSim::with_fabric(&t, JitterModel::none(), fabric);
        phase(&mut replay, 0.0);
        assert_eq!(phase(&mut replay, 1e9), both);
    }

    #[test]
    fn background_schedule_replays_from_its_seed() {
        let t = topo();
        let run = |bg_seed: u64| {
            let fabric = FabricConfig {
                background: Background::with_load(0.5, bg_seed),
                ..FabricConfig::default()
            };
            let mut sim = NetSim::with_fabric(&t, JitterModel::none(), fabric);
            for i in 0..30u64 {
                sim.send_at(i as f64 * 30_000.0, 1 + (i as usize % 3), 0, 20_000, i);
            }
            let mut log = Vec::new();
            sim.run(|_, d| log.push((d.tag, d.time.to_bits())));
            log
        };
        assert_eq!(run(9), run(9), "same bg seed must replay bitwise");
        assert_ne!(run(9), run(10), "bg seed must steer the contention");
    }

    #[test]
    fn pareto_flow_sizes_are_seed_pure_and_heavy_tailed() {
        let t = topo();
        let run = |bg_seed: u64, flows: FlowSizes| {
            let fabric = FabricConfig {
                background: Background {
                    flow_sizes: flows,
                    ..Background::with_load(0.5, bg_seed)
                },
                ..FabricConfig::default()
            };
            let mut sim = NetSim::with_fabric(&t, JitterModel::none(), fabric);
            for i in 0..30u64 {
                sim.send_at(i as f64 * 30_000.0, 1 + (i as usize % 3), 0, 20_000, i);
            }
            let mut log = Vec::new();
            let stats = sim.run(|_, d| log.push((d.tag, d.time.to_bits())));
            (log, stats)
        };
        let pareto = FlowSizes::Pareto { alpha: 1.5 };
        // Purity: the whole schedule — sizes included — is a function
        // of the background seed alone.
        assert_eq!(run(9, pareto), run(9, pareto), "same bg seed must replay bitwise");
        assert_ne!(run(9, pareto), run(10, pareto), "bg seed must steer the sizes");
        // The tail actually moves bytes around: fixed-size tenants
        // deliver exact multiples of the configured size, Pareto ones
        // don't, and the foreground timing feels the difference.
        let (fixed_log, fixed_stats) = run(9, FlowSizes::Fixed);
        let (pareto_log, pareto_stats) = run(9, pareto);
        assert_eq!(
            fixed_stats.bg_bytes_delivered,
            fixed_stats.bg_deliveries * 16 * 1024
        );
        assert!(pareto_stats.bg_deliveries > 0);
        assert_ne!(
            pareto_stats.bg_bytes_delivered,
            pareto_stats.bg_deliveries * 16 * 1024
        );
        assert_ne!(fixed_log, pareto_log);
    }

    #[test]
    fn pareto_sampler_keeps_the_configured_mean() {
        // Inverse-CDF sanity: with alpha = 2.5 the mean is bytes and
        // the draw never collapses below a byte. Deterministic RNG, so
        // the tolerance is not flaky.
        let flows = FlowSizes::Pareto { alpha: 2.5 };
        let mut rng = SplitMix64::new(7);
        let n = 20_000u64;
        let mut total = 0u64;
        let mut min = u64::MAX;
        for _ in 0..n {
            let s = flows.sample(16 * 1024, &mut rng);
            assert!(s >= 1);
            total += s;
            min = min.min(s);
        }
        let mean = total as f64 / n as f64;
        assert!(
            (mean / (16.0 * 1024.0) - 1.0).abs() < 0.15,
            "empirical mean {mean} strays from the configured 16 KiB"
        );
        // x_m = bytes·(α−1)/α = 0.6·bytes is the distribution floor.
        assert!(min as f64 >= (16.0 * 1024.0) * 0.6 - 1.0);
        // Fixed never draws: the RNG stream is untouched.
        let mut a = SplitMix64::new(3);
        let b_next = SplitMix64::new(3).next_u64();
        assert_eq!(FlowSizes::Fixed.sample(512, &mut a), 512);
        assert_eq!(a.next_u64(), b_next);
    }

    #[test]
    #[should_panic(expected = "alpha > 1")]
    fn pareto_flows_reject_infinite_mean() {
        let _ = Background::with_load(0.5, 1).with_pareto_flows(1.0);
    }

    #[test]
    fn ecmp_choice_is_seeded_and_spreads_over_spines() {
        let spec = LinkSpec::new(100.0, 1.0);
        let t = crate::topology::Topology::fat_tree_spines(8, 4, 4, spec, spec);
        let run = |route: RouteSelect| {
            let fabric = FabricConfig {
                route_select: route,
                ..FabricConfig::default()
            };
            let mut sim = NetSim::with_fabric(&t, JitterModel::none(), fabric);
            // Cross-group shuffle to *distinct* destinations: the only
            // shared resource is the sending group's spine uplink, so
            // Fixed routing piles all four onto the canonical spine
            // while ECMP spreads them out.
            for r in 4..8 {
                sim.send_at(0.0, r, r - 4, 1000, r as u64);
            }
            let mut log = Vec::new();
            let stats = sim.run(|_, d| log.push((d.tag, d.time.to_bits())));
            (log, stats)
        };
        let (fixed_log, fixed_stats) = run(RouteSelect::Fixed);
        let (ecmp_log, ecmp_stats) = run(RouteSelect::SeededEcmp { seed: 3 });
        let (ecmp_log2, _) = run(RouteSelect::SeededEcmp { seed: 3 });
        assert_eq!(ecmp_log, ecmp_log2, "same route seed must replay bitwise");
        // Same messages arrive either way…
        let tags = |log: &[(u64, u64)]| {
            let mut v: Vec<u64> = log.iter().map(|&(tag, _)| tag).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(tags(&fixed_log), tags(&ecmp_log));
        // …but spreading over spines relieves the shared uplink.
        assert!(
            ecmp_stats.wait_ns < fixed_stats.wait_ns,
            "ecmp {} vs fixed {}",
            ecmp_stats.wait_ns,
            fixed_stats.wait_ns
        );
    }

    #[test]
    fn take_stats_resets_link_counters_too() {
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::none());
        for r in 1..4 {
            sim.send_at(0.0, r, 0, 1000, 0);
        }
        sim.run(|_, _| {});
        let contended = t.route_hops(1, 0)[1].link_id as usize;
        assert_eq!(sim.link_stats(contended).messages, 3);
        let phase1 = sim.take_stats();
        assert_eq!(phase1.max_queue_depth, 3);
        assert_eq!(sim.link_stats(contended), LinkStats::default());
        // A quiet second phase reports only itself.
        sim.send_at(1_000_000.0, 1, 0, 1000, 0);
        let phase2 = sim.run(|_, _| {});
        assert_eq!(phase2.deliveries, 1);
        assert_eq!(phase2.contended_hops, 0);
        assert_eq!(phase2.max_queue_depth, 1);
        assert_eq!(sim.link_stats(contended).messages, 1);
    }

    #[test]
    fn self_send_delivers_immediately() {
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::uniform(1.0, 3));
        sim.send_at(42.0, 2, 2, 8, 0);
        let mut seen = Vec::new();
        let stats = sim.run(|_, d| seen.push(d));
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].time, 42.0);
        assert_eq!(stats.hops_traversed, 0);
    }
}
