//! Seeded discrete-event message engine.
//!
//! [`NetSim`] moves messages over a [`Topology`] hop by hop. Each hop
//! of a `b`-byte message over a link with spec `(α, β)` costs
//!
//! ```text
//! wait (link busy)  +  β·b (serialization)  +  α (propagation)  +  jitter
//! ```
//!
//! Links are store-and-forward and serialize: a directed link carries
//! one message at a time, so fan-in through a shared switch port
//! spaces arrivals out even without jitter. The *only* nondeterminism
//! is the seeded [`JitterModel`]; with [`JitterModel::none`] the
//! engine is bit-for-bit deterministic — that zero-jitter mode is the
//! suite's model of a software-scheduled interconnect (the LPU
//! multiprocessor of the paper's conclusion), and the jittered mode is
//! "MPI on a busy fabric".
//!
//! Events with equal timestamps resolve by injection sequence number,
//! so a given seed always replays the identical schedule.
//!
//! The hot path is allocation-free and index-based: routes are
//! borrowed `&[Hop]` slices from the topology's precomputed arena
//! ([`Topology::route_hops`]), per-link busy state lives in a dense
//! `Vec<f64>` indexed by [`crate::topology::Hop::link_id`], and message
//! slots are recycled once a message delivers (external message ids
//! stay injection-ordered, so jitter streams and tie-breaking are
//! unaffected by recycling). After warm-up, injecting and delivering a
//! message touches no allocator at all.

use fpna_core::rng::SplitMix64;
use crate::topology::Topology;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-hop timing noise: uniform in `[0, frac_of_cost · (α + β·b))` —
/// a fraction of the hop's whole deterministic service time, because
/// real fabric noise (congestion, retransmits, adaptive detours)
/// scales with how long the message occupies the path, not just with
/// propagation delay. Samples are drawn from a stream keyed by
/// `(seed, message, hop)` so a run is replayable from its seed alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterModel {
    /// Jitter amplitude as a fraction of each hop's deterministic
    /// service time (serialization + latency).
    pub frac_of_cost: f64,
    /// Seed standing in for "what the fabric did this run".
    pub seed: u64,
}

impl JitterModel {
    /// The software-scheduled fabric: no jitter at all.
    pub fn none() -> Self {
        JitterModel {
            frac_of_cost: 0.0,
            seed: 0,
        }
    }

    /// Jitter of `frac` of each hop's service time, driven by `seed`.
    pub fn uniform(frac: f64, seed: u64) -> Self {
        assert!(frac >= 0.0, "jitter fraction must be non-negative");
        JitterModel {
            frac_of_cost: frac,
            seed,
        }
    }

    /// `true` when this model can never perturb a timestamp.
    pub fn is_zero(&self) -> bool {
        self.frac_of_cost == 0.0
    }

    fn sample_ns(&self, msg: u64, hop: u64, hop_cost_ns: f64) -> f64 {
        if self.frac_of_cost == 0.0 {
            return 0.0;
        }
        let mut g = SplitMix64::new(
            self.seed
                ^ msg.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ hop.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        g.next_u64(); // decorrelate nearby keys
        self.frac_of_cost * hop_cost_ns * g.next_f64()
    }
}

/// A message handed to the delivery callback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Engine-assigned message id (injection order).
    pub msg: u64,
    /// Sending rank.
    pub from: usize,
    /// Receiving rank.
    pub to: usize,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Caller-defined tag (round number, segment id, …).
    pub tag: u64,
    /// Simulated arrival time in nanoseconds.
    pub time: f64,
}

/// Aggregate statistics of [`NetSim::run`].
///
/// Stats are **cumulative across every `run` call on the same
/// engine**: a protocol that alternates injection and `run` phases
/// keeps adding to the same counters. Use [`NetSim::take_stats`] to
/// read-and-reset between phases when per-phase numbers are wanted.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunStats {
    /// Time the last message arrived (ns); 0 for an empty run.
    pub makespan_ns: f64,
    /// Messages delivered.
    pub deliveries: u64,
    /// Payload bytes delivered (sum over messages, not hops).
    pub bytes_delivered: u64,
    /// Total link traversals.
    pub hops_traversed: u64,
}

/// In-flight message state. Lives in a recycled slot (the slot index
/// is engine-internal); `id` is the externally visible injection-order
/// id that outlives the slot.
#[derive(Debug, Clone, Copy)]
struct Message {
    id: u64,
    from: usize,
    to: usize,
    bytes: u64,
    tag: u64,
    /// Hop count of the precomputed route `from → to` (the hops
    /// themselves are read from the topology's arena per event).
    route_len: u32,
}

/// One scheduled step: the message in `slot` is ready to enter hop
/// `hop` (or, when `hop == route_len`, to be delivered) at `time`.
#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    slot: u32,
    hop: u32,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time).is_eq() && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// The discrete-event engine. Drive it by injecting sends (possibly
/// from inside the delivery callback) and calling [`NetSim::run`].
#[derive(Debug)]
pub struct NetSim<'t> {
    topo: &'t Topology,
    jitter: JitterModel,
    queue: BinaryHeap<Reverse<Event>>,
    /// Slot-addressed in-flight messages; delivered slots are pushed
    /// onto `free` and reused by later sends, so the live set — not
    /// the whole run history — bounds memory.
    messages: Vec<Message>,
    free: Vec<u32>,
    /// Next external message id (injection order; never recycled).
    next_id: u64,
    /// `link_busy_until[link_id]`: time the directed link becomes free.
    link_busy_until: Vec<f64>,
    seq: u64,
    stats: RunStats,
}

impl<'t> NetSim<'t> {
    /// A fresh engine over `topo` with the given timing-noise model.
    pub fn new(topo: &'t Topology, jitter: JitterModel) -> Self {
        NetSim {
            topo,
            jitter,
            queue: BinaryHeap::new(),
            messages: Vec::new(),
            free: Vec::new(),
            next_id: 0,
            link_busy_until: vec![0.0; topo.num_links()],
            seq: 0,
            stats: RunStats::default(),
        }
    }

    /// The topology this engine simulates.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// Inject a `bytes`-byte message from rank `from` to rank `to` at
    /// simulated time `at_ns`. Returns the message id (injection
    /// order — ids are never reused even though the internal slot is
    /// recycled after delivery). A self-send (`from == to`) delivers
    /// at `at_ns` with no link traffic.
    pub fn send_at(&mut self, at_ns: f64, from: usize, to: usize, bytes: u64, tag: u64) -> u64 {
        assert!(at_ns.is_finite() && at_ns >= 0.0, "send time must be finite and non-negative");
        let id = self.next_id;
        self.next_id += 1;
        let route_len = self.topo.route_hops(from, to).len() as u32;
        let message = Message {
            id,
            from,
            to,
            bytes,
            tag,
            route_len,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.messages[s as usize] = message;
                s
            }
            None => {
                self.messages.push(message);
                (self.messages.len() - 1) as u32
            }
        };
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time: at_ns,
            seq,
            slot,
            hop: 0,
        }));
        id
    }

    /// Process every pending event in time order, invoking
    /// `on_deliver` for each message that reaches its destination. The
    /// callback may inject further sends. Returns the run statistics
    /// — **cumulative** across multiple `run` calls on the same engine
    /// (see [`NetSim::take_stats`] for per-phase numbers).
    pub fn run<F>(&mut self, mut on_deliver: F) -> RunStats
    where
        F: FnMut(&mut NetSim<'t>, Delivery),
    {
        while let Some(Reverse(ev)) = self.queue.pop() {
            let m = self.messages[ev.slot as usize];
            if ev.hop == m.route_len {
                // Retire the slot before the callback runs so chained
                // sends can reuse it immediately.
                self.free.push(ev.slot);
                let delivery = Delivery {
                    msg: m.id,
                    from: m.from,
                    to: m.to,
                    bytes: m.bytes,
                    tag: m.tag,
                    time: ev.time,
                };
                self.stats.deliveries += 1;
                self.stats.bytes_delivered += m.bytes;
                self.stats.makespan_ns = self.stats.makespan_ns.max(ev.time);
                on_deliver(self, delivery);
                continue;
            }
            // Enter the next link: wait for it to free, hold it for the
            // serialization time, then propagate (+ jitter).
            let hop = self.topo.route_hops(m.from, m.to)[ev.hop as usize];
            let busy = &mut self.link_busy_until[hop.link_id as usize];
            let start = ev.time.max(*busy);
            let serialize = hop.link.ns_per_byte * m.bytes as f64;
            *busy = start + serialize;
            let jitter =
                self.jitter
                    .sample_ns(m.id, u64::from(ev.hop), serialize + hop.link.latency_ns);
            let arrive = start + serialize + hop.link.latency_ns + jitter;
            self.stats.hops_traversed += 1;
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Reverse(Event {
                time: arrive,
                seq,
                slot: ev.slot,
                hop: ev.hop + 1,
            }));
        }
        self.stats
    }

    /// The statistics accumulated so far, **resetting** them to zero —
    /// so a multi-phase protocol (inject, `run`, inject, `run`, …) can
    /// report per-phase numbers instead of the cumulative totals that
    /// [`NetSim::run`] returns. Pending events, link busy state and
    /// message ids are untouched.
    pub fn take_stats(&mut self) -> RunStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn topo() -> Topology {
        Topology::flat_switch(4, LinkSpec::new(100.0, 1.0))
    }

    #[test]
    fn single_message_cost_matches_path_cost() {
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::none());
        sim.send_at(0.0, 0, 1, 8, 0);
        let mut seen = Vec::new();
        let stats = sim.run(|_, d| seen.push(d));
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].from, 0);
        assert_eq!(seen[0].to, 1);
        // 2 hops × (100 + 8) ns, no contention
        assert!((seen[0].time - 216.0).abs() < 1e-9);
        assert_eq!(stats.hops_traversed, 2);
        assert_eq!(stats.bytes_delivered, 8);
    }

    #[test]
    fn shared_link_serializes_fan_in() {
        // Ranks 1, 2, 3 all send to 0 at t=0: the switch→rank-0 link is
        // shared, so arrivals are spaced by the serialization time.
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::none());
        for r in 1..4 {
            sim.send_at(0.0, r, 0, 1000, 0);
        }
        let mut times = Vec::new();
        sim.run(|_, d| times.push(d.time));
        assert_eq!(times.len(), 3);
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        // Gaps of exactly β·bytes = 1000 ns between consecutive arrivals.
        assert!((sorted[1] - sorted[0] - 1000.0).abs() < 1e-9, "{sorted:?}");
        assert!((sorted[2] - sorted[1] - 1000.0).abs() < 1e-9, "{sorted:?}");
    }

    #[test]
    fn zero_jitter_replays_identically() {
        let t = topo();
        let run = || {
            let mut sim = NetSim::new(&t, JitterModel::none());
            for r in 1..4 {
                sim.send_at(r as f64, r, 0, 64, r as u64);
            }
            let mut log = Vec::new();
            sim.run(|_, d| log.push((d.msg, d.tag, d.time.to_bits())));
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn jitter_seeds_change_timing_but_not_payloads() {
        let t = topo();
        let run = |seed| {
            let mut sim = NetSim::new(&t, JitterModel::uniform(0.5, seed));
            for r in 1..4 {
                sim.send_at(0.0, r, 0, 64, r as u64);
            }
            let mut log = Vec::new();
            sim.run(|_, d| log.push((d.tag, d.time)));
            log
        };
        let a = run(1);
        let b = run(2);
        let tags = |log: &[(u64, f64)]| {
            let mut t: Vec<u64> = log.iter().map(|&(tag, _)| tag).collect();
            t.sort_unstable();
            t
        };
        assert_eq!(tags(&a), tags(&b), "same messages must arrive");
        assert!(
            a.iter().zip(&b).any(|(x, y)| x.1 != y.1),
            "different seeds should perturb some timestamp"
        );
        // and the same seed replays exactly
        let a2 = run(1);
        assert_eq!(
            a.iter().map(|&(_, t)| t.to_bits()).collect::<Vec<_>>(),
            a2.iter().map(|&(_, t)| t.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn callback_can_chain_sends() {
        // 1 → 0, then on delivery 0 → 2: a two-leg relay.
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::none());
        sim.send_at(0.0, 1, 0, 8, 7);
        let mut legs = Vec::new();
        sim.run(|sim, d| {
            legs.push((d.from, d.to, d.time));
            if d.tag == 7 && d.to == 0 {
                sim.send_at(d.time, 0, 2, 8, 8);
            }
        });
        assert_eq!(legs.len(), 2);
        assert_eq!(legs[1].0, 0);
        assert_eq!(legs[1].1, 2);
        assert!(legs[1].2 > legs[0].2);
    }

    #[test]
    fn message_ids_stay_injection_ordered_across_slot_recycling() {
        // A long relay: each delivery triggers the next send, so every
        // message after the first reuses the same recycled slot. Ids
        // must still count up in injection order.
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::none());
        let first = sim.send_at(0.0, 0, 1, 8, 0);
        assert_eq!(first, 0);
        let mut ids = Vec::new();
        sim.run(|sim, d| {
            ids.push(d.msg);
            if d.tag < 20 {
                let id = sim.send_at(d.time, d.to, (d.to + 1) % 4, 8, d.tag + 1);
                assert_eq!(id, d.tag + 1, "ids are injection-ordered");
            }
        });
        assert_eq!(ids, (0..=20).collect::<Vec<_>>());
    }

    #[test]
    fn take_stats_resets_for_per_phase_reporting() {
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::none());
        sim.send_at(0.0, 0, 1, 100, 0);
        let phase1 = sim.run(|_, _| {});
        assert_eq!(phase1.deliveries, 1);
        assert_eq!(sim.take_stats(), phase1);
        // Counters restart from zero; message ids keep counting up.
        let id = sim.send_at(0.0, 1, 2, 50, 0);
        assert_eq!(id, 1);
        let phase2 = sim.run(|_, _| {});
        assert_eq!(phase2.deliveries, 1);
        assert_eq!(phase2.bytes_delivered, 50);
        // run() without take_stats stays cumulative.
        sim.send_at(0.0, 2, 3, 25, 0);
        let cumulative = sim.run(|_, _| {});
        assert_eq!(cumulative.deliveries, 2);
        assert_eq!(cumulative.bytes_delivered, 75);
    }

    #[test]
    fn self_send_delivers_immediately() {
        let t = topo();
        let mut sim = NetSim::new(&t, JitterModel::uniform(1.0, 3));
        sim.send_at(42.0, 2, 2, 8, 0);
        let mut seen = Vec::new();
        let stats = sim.run(|_, d| seen.push(d));
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].time, 42.0);
        assert_eq!(stats.hops_traversed, 0);
    }
}
