//! Per-run cost/variability reporting through `fpna_core`.
//!
//! The experiment shape for network collectives is always "fix the
//! inputs, vary the fabric's jitter seed": [`sweep_seeds`] runs a
//! closure once per seed, compares the produced vectors against a
//! reference with the paper's `Vermv`/`Vc` metrics (via
//! [`fpna_core::harness::VariabilityReport`]), and summarises the
//! simulated elapsed times alongside — variability *and* cost from the
//! same runs, which is the whole point of the table-9 sweep.
//!
//! Seeds are independent by construction, so the sweep fans out
//! through a [`RunExecutor`]; outputs are collected in seed order and
//! the resulting [`SeedSweep`] is bitwise identical at any thread
//! count.

use fpna_core::executor::RunExecutor;
use fpna_core::harness::{RunSummary, VariabilityReport};
use fpna_core::metrics::ArrayComparison;

/// Joint variability/cost summary of a seed sweep.
#[derive(Debug, Clone)]
pub struct SeedSweep {
    /// Bitwise/relative variability of the produced vectors against
    /// the reference.
    pub variability: VariabilityReport,
    /// Simulated elapsed time (ns) across the runs.
    pub elapsed_ns: RunSummary,
}

impl SeedSweep {
    /// `true` when every seed reproduced the reference bitwise.
    pub fn bitwise_reproducible(&self) -> bool {
        self.variability.fully_reproducible()
    }

    /// Summarise already-collected `(values, elapsed_ns)` outputs (in
    /// run order) against `reference`. Useful when the caller needs the
    /// raw per-run vectors for extra metrics beyond the standard
    /// report.
    ///
    /// # Panics
    ///
    /// Panics if an output vector is shaped differently from the
    /// reference (that is a protocol bug, not a data condition).
    pub fn from_outputs(reference: &[f64], outputs: &[(Vec<f64>, f64)]) -> SeedSweep {
        let comparisons: Vec<ArrayComparison> = outputs
            .iter()
            .map(|(values, _)| ArrayComparison::compare(reference, values))
            .collect();
        let elapsed: Vec<f64> = outputs.iter().map(|&(_, dt)| dt).collect();
        SeedSweep {
            variability: VariabilityReport::from_comparisons(&comparisons),
            elapsed_ns: RunSummary::from_values(&elapsed),
        }
    }
}

/// Run `run(seed)` for every seed through `executor`, comparing each
/// produced vector to `reference`. `run` returns `(values,
/// elapsed_ns)`.
///
/// # Panics
///
/// Panics if a run returns a vector shaped differently from the
/// reference (that is a protocol bug, not a data condition).
pub fn sweep_seeds<F>(
    executor: &RunExecutor,
    reference: &[f64],
    seeds: &[u64],
    run: F,
) -> SeedSweep
where
    F: Fn(u64) -> (Vec<f64>, f64) + Sync,
{
    let outputs = executor.map_runs(seeds.len(), |i| run(seeds[i]));
    SeedSweep::from_outputs(reference, &outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_runs_report_zero_variability() {
        let reference = vec![1.0, 2.0, 3.0];
        let sweep = sweep_seeds(&RunExecutor::serial(), &reference, &[1, 2, 3], |_| {
            (reference.clone(), 100.0)
        });
        assert!(sweep.bitwise_reproducible());
        assert_eq!(sweep.variability.vc.max, 0.0);
        assert_eq!(sweep.elapsed_ns.mean, 100.0);
        assert_eq!(sweep.elapsed_ns.std_dev, 0.0);
    }

    #[test]
    fn seed_dependent_runs_are_caught() {
        let reference = vec![1.0, 2.0];
        let sweep = sweep_seeds(&RunExecutor::serial(), &reference, &[0, 1, 2, 3], |s| {
            let mut v = reference.clone();
            if s % 2 == 1 {
                v[0] += 1e-12;
            }
            (v, 100.0 + s as f64)
        });
        assert!(!sweep.bitwise_reproducible());
        assert_eq!(sweep.variability.bitwise_identical_runs, 2);
        assert_eq!(sweep.variability.vc.max, 0.5);
        assert!(sweep.elapsed_ns.std_dev > 0.0);
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let reference = vec![0.5, 1.5, 2.5];
        let seeds: Vec<u64> = (0..23).collect();
        let run = |s: u64| {
            let mut v = reference.clone();
            v[(s % 3) as usize] += s as f64 * 1e-13;
            (v, 50.0 + (s as f64).sqrt())
        };
        let serial = sweep_seeds(&RunExecutor::serial(), &reference, &seeds, run);
        for threads in [2usize, 4, 7] {
            let parallel = sweep_seeds(&RunExecutor::new(threads), &reference, &seeds, run);
            assert_eq!(
                serial.variability.bitwise_identical_runs,
                parallel.variability.bitwise_identical_runs
            );
            assert_eq!(
                serial.variability.vermv.mean.to_bits(),
                parallel.variability.vermv.mean.to_bits(),
                "threads={threads}"
            );
            assert_eq!(
                serial.elapsed_ns.std_dev.to_bits(),
                parallel.elapsed_ns.std_dev.to_bits(),
                "threads={threads}"
            );
            for (a, b) in serial
                .variability
                .per_run
                .iter()
                .zip(&parallel.variability.per_run)
            {
                assert_eq!(a.0.to_bits(), b.0.to_bits());
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }
}
