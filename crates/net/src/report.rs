//! Per-run cost/variability reporting through `fpna_core`.
//!
//! The experiment shape for network collectives is always "fix the
//! inputs, vary the fabric's jitter seed": [`sweep_seeds`] runs a
//! closure once per seed, compares the produced vectors against a
//! reference with the paper's `Vermv`/`Vc` metrics (via
//! [`fpna_core::harness::VariabilityHarness`]), and summarises the
//! simulated elapsed times alongside — variability *and* cost from the
//! same runs, which is the whole point of the table-9 sweep.

use fpna_core::harness::{RunSummary, VariabilityReport};
use fpna_core::metrics::ArrayComparison;

/// Joint variability/cost summary of a seed sweep.
#[derive(Debug, Clone)]
pub struct SeedSweep {
    /// Bitwise/relative variability of the produced vectors against
    /// the reference.
    pub variability: VariabilityReport,
    /// Simulated elapsed time (ns) across the runs.
    pub elapsed_ns: RunSummary,
}

impl SeedSweep {
    /// `true` when every seed reproduced the reference bitwise.
    pub fn bitwise_reproducible(&self) -> bool {
        self.variability.fully_reproducible()
    }
}

/// Run `run(seed)` for every seed, comparing each produced vector to
/// `reference`. `run` returns `(values, elapsed_ns)`.
///
/// # Panics
///
/// Panics if a run returns a vector shaped differently from the
/// reference (that is a protocol bug, not a data condition).
pub fn sweep_seeds<F>(reference: &[f64], seeds: &[u64], mut run: F) -> SeedSweep
where
    F: FnMut(u64) -> (Vec<f64>, f64),
{
    let mut per_run = Vec::with_capacity(seeds.len());
    let mut vermv = Vec::with_capacity(seeds.len());
    let mut vc = Vec::with_capacity(seeds.len());
    let mut max_abs = Vec::with_capacity(seeds.len());
    let mut elapsed = Vec::with_capacity(seeds.len());
    let mut identical = 0usize;
    for &seed in seeds {
        let (values, dt) = run(seed);
        let cmp = ArrayComparison::compare(reference, &values);
        if cmp.bitwise_identical() {
            identical += 1;
        }
        per_run.push((cmp.vermv, cmp.vc));
        vermv.push(cmp.vermv);
        vc.push(cmp.vc);
        max_abs.push(cmp.max_abs_diff);
        elapsed.push(dt);
    }
    SeedSweep {
        variability: VariabilityReport {
            vermv: RunSummary::from_values(&vermv),
            vc: RunSummary::from_values(&vc),
            max_abs_diff: RunSummary::from_values(&max_abs),
            bitwise_identical_runs: identical,
            per_run,
        },
        elapsed_ns: RunSummary::from_values(&elapsed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_runs_report_zero_variability() {
        let reference = vec![1.0, 2.0, 3.0];
        let sweep = sweep_seeds(&reference, &[1, 2, 3], |_| (reference.clone(), 100.0));
        assert!(sweep.bitwise_reproducible());
        assert_eq!(sweep.variability.vc.max, 0.0);
        assert_eq!(sweep.elapsed_ns.mean, 100.0);
        assert_eq!(sweep.elapsed_ns.std_dev, 0.0);
    }

    #[test]
    fn seed_dependent_runs_are_caught() {
        let reference = vec![1.0, 2.0];
        let sweep = sweep_seeds(&reference, &[0, 1, 2, 3], |s| {
            let mut v = reference.clone();
            if s % 2 == 1 {
                v[0] += 1e-12;
            }
            (v, 100.0 + s as f64)
        });
        assert!(!sweep.bitwise_reproducible());
        assert_eq!(sweep.variability.bitwise_identical_runs, 2);
        assert_eq!(sweep.variability.vc.max, 0.5);
        assert!(sweep.elapsed_ns.std_dev > 0.0);
    }
}
