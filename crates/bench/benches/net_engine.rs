//! Criterion microbenchmarks of the raw `fpna-net` event engine —
//! the layer the allocation-free overhaul targets. Unlike the
//! `allreduce_net` suite (whole protocols, value folding included),
//! these isolate the engine primitives: route-table lookups, event
//! scheduling over contended links, and callback-chained sends that
//! exercise message-slot recycling.
//!
//! This suite is deliberately **not** in the committed `bench_gate`
//! baseline: CI compiles and runs it on every push (so it cannot
//! bit-rot) but applies no timing gate — the `allreduce_net` suite
//! already gates the engine end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fpna_net::{FabricConfig, JitterModel, LinkSpec, NetSim, QueueImpl, Topology};

fn flat() -> Topology {
    Topology::flat_switch(64, LinkSpec::new(500.0, 25.0))
}

fn hier() -> Topology {
    Topology::hierarchical(
        8,
        8,
        LinkSpec::new(200.0, 100.0),
        LinkSpec::new(500.0, 50.0),
        LinkSpec::new(5_000.0, 25.0),
    )
}

/// `(from, to, bytes, inject_ns)` random traffic over `p` ranks.
fn plan(p: usize, count: usize) -> Vec<(usize, usize, u64, f64)> {
    let mut rng = fpna_core::rng::SplitMix64::new(77);
    (0..count)
        .map(|_| {
            let from = rng.next_below(p as u64) as usize;
            let to = rng.next_below(p as u64) as usize;
            (from, to, rng.next_below(1 << 14), rng.next_below(10_000) as f64)
        })
        .collect()
}

/// All-pairs precomputed route lookups + per-hop cost walk — the
/// per-event work `NetSim::run` does, without the heap.
fn bench_route_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_engine");
    for (topo, name) in [(flat(), "flat"), (hier(), "hier")] {
        let p = topo.ranks();
        group.throughput(Throughput::Elements((p * p) as u64));
        group.bench_with_input(BenchmarkId::new("route_table", name), &topo, |b, topo| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for from in 0..p {
                    for to in 0..p {
                        for h in topo.route_hops(from, to) {
                            acc += h.link.cost_ns(std::hint::black_box(4096));
                        }
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

/// 1024 random messages through the full event loop: queue churn,
/// dense link-busy updates, jitter sampling. The `flood` rows run the
/// default calendar queue; the `flood_heap` rows run the identical
/// workload on the retained `BinaryHeap` reference, so the pair
/// isolates the bucket-pop vs heap-pop win (the two engines deliver
/// bitwise-identically, so any delta is pure queue cost).
fn bench_flood(c: &mut Criterion) {
    const MSGS: usize = 1024;
    let mut group = c.benchmark_group("net_engine");
    group.throughput(Throughput::Elements(MSGS as u64));
    for (queue, row) in [(QueueImpl::Calendar, "flood"), (QueueImpl::Heap, "flood_heap")] {
        for (topo, name) in [(flat(), "flat"), (hier(), "hier")] {
            let traffic = plan(topo.ranks(), MSGS);
            group.bench_with_input(BenchmarkId::new(row, name), &topo, |b, topo| {
                b.iter(|| {
                    let mut sim = NetSim::with_queue(
                        topo,
                        JitterModel::uniform(0.3, 42),
                        FabricConfig::default(),
                        queue,
                    );
                    for (i, &(from, to, bytes, at)) in traffic.iter().enumerate() {
                        sim.send_at(at, from, to, bytes, i as u64);
                    }
                    let mut last = 0.0f64;
                    sim.run(|_, d| last = d.time);
                    last
                })
            });
        }
    }
    group.finish();
}

/// The flat flood with the `fpna-obs` event counters switched on —
/// the row that prices the counting path against the plain
/// `flood/flat` row above. The counter flags are sampled once at
/// engine construction into plain branches and tallies are local
/// until one flush per `run`, so the delta should be noise-level.
fn bench_flood_counted(c: &mut Criterion) {
    const MSGS: usize = 1024;
    let mut group = c.benchmark_group("net_engine");
    group.throughput(Throughput::Elements(MSGS as u64));
    let topo = flat();
    let traffic = plan(topo.ranks(), MSGS);
    fpna_obs::counters::reset();
    fpna_obs::counters::set_enabled(true);
    group.bench_with_input(BenchmarkId::new("flood_counted", "flat"), &topo, |b, topo| {
        b.iter(|| {
            let mut sim = NetSim::new(topo, JitterModel::uniform(0.3, 42));
            for (i, &(from, to, bytes, at)) in traffic.iter().enumerate() {
                sim.send_at(at, from, to, bytes, i as u64);
            }
            let mut last = 0.0f64;
            sim.run(|_, d| last = d.time);
            last
        })
    });
    fpna_obs::counters::set_enabled(false);
    fpna_obs::counters::reset();
    group.finish();
}

/// A long callback-driven relay: every delivery injects the next
/// send, so one recycled message slot carries the whole run — the
/// chained-send path protocols live on. Like `flood`/`flood_heap`,
/// the `_heap` row prices the reference queue on the same workload.
fn bench_relay(c: &mut Criterion) {
    const LEGS: u64 = 4096;
    let topo = hier();
    let p = topo.ranks();
    let mut group = c.benchmark_group("net_engine");
    group.throughput(Throughput::Elements(LEGS));
    for (queue, row) in [(QueueImpl::Calendar, "relay_chain"), (QueueImpl::Heap, "relay_chain_heap")] {
        group.bench_function(row, |b| {
            b.iter(|| {
                let mut sim =
                    NetSim::with_queue(&topo, JitterModel::none(), FabricConfig::default(), queue);
                sim.send_at(0.0, 0, 1, 256, 0);
                let mut last = 0.0f64;
                sim.run(|sim, d| {
                    last = d.time;
                    if d.tag < LEGS {
                        sim.send_at(d.time, d.to, (d.to + 1) % p, 256, d.tag + 1);
                    }
                });
                last
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_route_table, bench_flood, bench_flood_counted, bench_relay);
criterion_main!(benches);
