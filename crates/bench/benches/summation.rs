//! Criterion microbenchmarks of every summation algorithm
//! (deterministic and not) — the cost side of the §III trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fpna_summation::SumAlgorithm;

fn bench_summation(c: &mut Criterion) {
    let n = 100_000usize;
    let mut rng = fpna_core::rng::SplitMix64::new(1);
    let xs: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0).collect();
    let mut group = c.benchmark_group("summation");
    group.throughput(Throughput::Elements(n as u64));
    for alg in SumAlgorithm::roster(4) {
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &xs, |b, xs| {
            b.iter(|| alg.sum(std::hint::black_box(xs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_summation);
criterion_main!(benches);
