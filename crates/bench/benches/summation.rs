//! Criterion microbenchmarks of every summation algorithm
//! (deterministic and not) — the cost side of the §III trade-off —
//! plus the exact-accumulator merge path (the per-message fixed cost
//! of every reproducible collective).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fpna_summation::{ExactAccumulator, SumAlgorithm};

fn bench_summation(c: &mut Criterion) {
    let n = 100_000usize;
    let mut rng = fpna_core::rng::SplitMix64::new(1);
    let xs: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0).collect();
    let mut group = c.benchmark_group("summation");
    group.throughput(Throughput::Elements(n as u64));
    for alg in SumAlgorithm::roster(4) {
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &xs, |b, xs| {
            b.iter(|| alg.sum(std::hint::black_box(xs)))
        });
    }
    // A/B row for the lane-vectorized `add_slice`: same pipeline
    // through the retained scalar reference, so the speedup is read
    // off one run instead of compared across machine states.
    group.bench_with_input(
        BenchmarkId::from_parameter("exact_scalar"),
        &xs,
        |b, xs| {
            b.iter(|| {
                let mut acc = ExactAccumulator::new();
                acc.add_slice_scalar(std::hint::black_box(xs));
                acc.round()
            })
        },
    );
    group.finish();
}

/// The collectives hot pattern: fold many canonical worker partials
/// into one accumulator, one merge per received message, then round
/// once. Watches `merge`'s no-clone span fold plus the span-aware
/// `normalize`/`round` fixed costs.
fn bench_exact_merge(c: &mut Criterion) {
    let parts_n = 64usize;
    let per_part = 1_000usize;
    let mut rng = fpna_core::rng::SplitMix64::new(5);
    let partials: Vec<ExactAccumulator> = (0..parts_n)
        .map(|_| {
            let mut acc: ExactAccumulator = (0..per_part)
                .map(|_| rng.next_f64() * 1e6 - 5e5)
                .collect();
            acc.normalize();
            acc
        })
        .collect();
    let mut group = c.benchmark_group("summation");
    group.throughput(Throughput::Elements(parts_n as u64));
    group.bench_with_input(
        BenchmarkId::from_parameter("exact_merge"),
        &partials,
        |b, parts| {
            b.iter(|| {
                let mut total = ExactAccumulator::new();
                for p in std::hint::black_box(parts) {
                    total.merge(p);
                }
                total.round()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_summation, bench_exact_merge);
criterion_main!(benches);
