//! Criterion microbenchmarks of the allreduce paths: the in-memory
//! fallback and the event-driven network simulation, across
//! algorithms and topologies — so the regression gate covers the
//! `fpna-net` subsystem from day one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fpna_collectives::{allreduce, allreduce_on, Algorithm, NetConfig, Ordering};
use fpna_net::{LinkSpec, RouteSelect, Topology};

const P: usize = 16;
const M: usize = 1_024;

fn make_ranks() -> Vec<Vec<f64>> {
    let mut rng = fpna_core::rng::SplitMix64::new(11);
    (0..P)
        .map(|_| (0..M).map(|_| rng.next_f64() * 1e6 - 5e5).collect())
        .collect()
}

fn algorithms() -> [(Algorithm, &'static str); 3] {
    [
        (Algorithm::Ring, "ring"),
        (Algorithm::KAryTree { fanout: 4 }, "tree4"),
        (Algorithm::RecursiveDoubling, "recdouble"),
    ]
}

fn bench_in_memory(c: &mut Criterion) {
    let ranks = make_ranks();
    let mut group = c.benchmark_group("allreduce_mem");
    group.throughput(Throughput::Elements((P * M) as u64));
    for (alg, name) in algorithms() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &ranks, |b, ranks| {
            b.iter(|| allreduce(std::hint::black_box(ranks), alg, Ordering::RankOrder))
        });
    }
    group.bench_with_input(BenchmarkId::from_parameter("reproducible"), &ranks, |b, ranks| {
        b.iter(|| allreduce(std::hint::black_box(ranks), Algorithm::Ring, Ordering::Reproducible))
    });
    group.finish();
}

fn bench_net_sim(c: &mut Criterion) {
    let ranks = make_ranks();
    let flat = Topology::flat_switch(P, LinkSpec::new(500.0, 25.0));
    let hier = Topology::hierarchical(
        4,
        P / 4,
        LinkSpec::new(200.0, 100.0),
        LinkSpec::new(500.0, 50.0),
        LinkSpec::new(5_000.0, 25.0),
    );
    let cfg = NetConfig::default();
    let mut group = c.benchmark_group("allreduce_net");
    group.throughput(Throughput::Elements((P * M) as u64));
    group.sample_size(10);
    for topo in [&flat, &hier] {
        let tname = if topo.diameter_hops() == 2 { "flat" } else { "hier" };
        for (alg, name) in algorithms() {
            group.bench_with_input(
                BenchmarkId::new(name, tname),
                &ranks,
                |b, ranks| {
                    b.iter(|| {
                        allreduce_on(
                            topo,
                            std::hint::black_box(ranks),
                            alg,
                            Ordering::ArrivalOrder { seed: 42 },
                            &cfg,
                        )
                    })
                },
            );
        }
    }
    group.bench_with_input(
        BenchmarkId::new("reproducible", "hier"),
        &ranks,
        |b, ranks| {
            b.iter(|| {
                allreduce_on(
                    &hier,
                    std::hint::black_box(ranks),
                    Algorithm::Ring,
                    Ordering::Reproducible,
                    &cfg,
                )
            })
        },
    );
    // Segmented (pipelined) variants: 8× the message count through the
    // engine for the same payload — the regime the allocation-free
    // event loop exists for.
    group.bench_with_input(
        BenchmarkId::new("ring_seg8", "hier"),
        &ranks,
        |b, ranks| {
            b.iter(|| {
                allreduce_on(
                    &hier,
                    std::hint::black_box(ranks),
                    Algorithm::SegmentedRing { segments: 8 },
                    Ordering::ArrivalOrder { seed: 42 },
                    &cfg,
                )
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("tree4_seg8", "hier"),
        &ranks,
        |b, ranks| {
            b.iter(|| {
                allreduce_on(
                    &hier,
                    std::hint::black_box(ranks),
                    Algorithm::SegmentedTree { fanout: 4, segments: 8 },
                    Ordering::ArrivalOrder { seed: 42 },
                    &cfg,
                )
            })
        },
    );
    // NIC coalescing A/B on a heavily segmented ring (32 chunks per
    // segment ⇒ 16-byte messages): same payload and bitwise-identical
    // values, but the coalesced run collapses the tiny chunks into
    // shared wire messages — pricing the engine-event reduction that
    // is the feature's whole point.
    for (threshold, name) in [(0u64, "ring_seg32"), (4096, "ring_seg32_coal")] {
        let cfg = NetConfig::default().with_coalesce(threshold);
        group.bench_with_input(BenchmarkId::new(name, "hier"), &ranks, |b, ranks| {
            b.iter(|| {
                allreduce_on(
                    &hier,
                    std::hint::black_box(ranks),
                    Algorithm::SegmentedRing { segments: 32 },
                    Ordering::ArrivalOrder { seed: 42 },
                    &cfg,
                )
            })
        });
    }
    // Topology-aware placement A/B on the deep fabric: the
    // hierarchical reduce against the oblivious fanout-4 tree it
    // replaces (same ordering, same fabric). Fewer NIC/spine events
    // per payload should also be a host-time win, which these rows
    // price against the gate baseline — plus the other aware variants
    // for bit-rot coverage.
    for (alg, name) in [
        (Algorithm::Hierarchical { intra: 4, inter: 4 }, "hier_aware"),
        (Algorithm::FabricRing, "fabricring_aware"),
        (Algorithm::DoubleBinaryTree, "dbt_aware"),
    ] {
        group.bench_with_input(BenchmarkId::new(name, "hier"), &ranks, |b, ranks| {
            b.iter(|| {
                allreduce_on(
                    &hier,
                    std::hint::black_box(ranks),
                    alg,
                    Ordering::ArrivalOrder { seed: 42 },
                    &cfg,
                )
            })
        });
    }
    // Contended fabric: seeded background tenants at 25% offered load
    // plus seeded ECMP over a 2-spine fat tree — the multi-tenant path
    // (tenant event injection, admission check, per-link queue/wait
    // accounting, route-group lookup) priced under the same gate.
    let fat = Topology::fat_tree_spines(
        P,
        4,
        2,
        LinkSpec::new(500.0, 25.0),
        LinkSpec::new(1_500.0, 50.0),
    );
    let loaded = NetConfig::default()
        .with_load(0.25, 7)
        .with_route(RouteSelect::SeededEcmp { seed: 7 });
    for (alg, name) in [
        (Algorithm::Ring, "ring_load25"),
        (Algorithm::KAryTree { fanout: 4 }, "tree4_load25"),
    ] {
        group.bench_with_input(BenchmarkId::new(name, "fat2"), &ranks, |b, ranks| {
            b.iter(|| {
                allreduce_on(
                    &fat,
                    std::hint::black_box(ranks),
                    alg,
                    Ordering::ArrivalOrder { seed: 42 },
                    &loaded,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_in_memory, bench_net_sim);
criterion_main!(benches);
