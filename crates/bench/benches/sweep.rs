//! Criterion rows for the fleet-scale sweep machinery: the shard
//! decode-and-merge path the coordinator pays per merge, and the
//! results store's cold vs warm report path. The workload is a
//! synthetic 7-shard sweep (6 cells × 420 runs × 5 metric columns) so
//! the rows price the *sweep plumbing* — hex-f64 JSON codec, row
//! absorption, exact-accumulator stat merges, atomic file writes —
//! not any experiment's compute.
//!
//! The `store_warm` / `store_cold` pair documents the cache win the
//! coordinator's report cache buys: warm is one small file read, cold
//! is a full write-shards + validate + merge pass. The committed
//! baseline keeps that ratio (≥10×) on the record, and CI's
//! coordinator smoke asserts the behavioural side (a warm rerun never
//! recomputes).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpna_core::rng::SplitMix64;
use fpna_sweep::store::{decode_shard, encode_shard};
use fpna_sweep::{shard_assignments, ExactStats, SweepRows, SweepSpec, SweepStore};

const SHARDS: usize = 7;
const RUNS: usize = 420;
const CELLS: usize = 6;
const COLS: usize = 5;

fn spec() -> SweepSpec {
    SweepSpec::new("bench-sweep", RUNS).arg("seed", 42)
}

/// Deterministic rows for one shard's global run range: every value is
/// a pure function of `(cell, run, column)`, so shard contents never
/// depend on which benchmark built them first.
fn rows_for(range: std::ops::Range<usize>) -> SweepRows {
    let mut rows = SweepRows::new();
    for cell in 0..CELLS {
        let name = format!("op/c{cell}");
        for run in range.clone() {
            let mut rng = SplitMix64::new((cell as u64) << 32 | run as u64);
            let values = (0..COLS).map(|_| rng.next_f64() - 0.5).collect();
            rows.push(&name, run, values);
        }
    }
    rows
}

/// The 7 encoded shard documents, exactly as shard processes would
/// write them.
fn shard_texts() -> Vec<String> {
    let s = spec();
    shard_assignments(&s, SHARDS)
        .into_iter()
        .map(|a| encode_shard(&s, a.shard_id, a.run_range.clone(), &rows_for(a.run_range)))
        .collect()
}

/// Decode + absorb + stat-merge of a full 7-shard partition from
/// in-memory documents — `SweepStore::load_merged` minus the
/// filesystem, i.e. the pure merge cost per coordinator merge.
fn bench_merge(c: &mut Criterion) {
    let texts = shard_texts();
    let mut group = c.benchmark_group("sweep");
    group.throughput(Throughput::Elements((CELLS * RUNS) as u64));
    group.bench_function("merge_7shards", |b| {
        b.iter(|| {
            let mut rows = SweepRows::new();
            let mut stats = ExactStats::default();
            for text in &texts {
                let shard = decode_shard(text).expect("bench shards are well-formed");
                rows.absorb(shard.rows).expect("disjoint runs");
                stats.merge_from(&shard.stats);
            }
            (rows.row_count(), stats.fingerprint())
        })
    });
    group.finish();
}

/// The store's report path, cold vs warm. Cold is a first-ever merge:
/// write all 7 shard files, validate-and-merge them back, cache the
/// report. Warm is every later request for the same spec: one cached
/// report read. The gap between these two rows is what the
/// content-addressed cache saves on every repeated sweep query —
/// before counting the experiment compute a cold run would also redo.
fn bench_store(c: &mut Criterion) {
    let s = spec();
    let dir = std::env::temp_dir().join(format!("fpna-bench-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SweepStore::new(&dir);
    let shards: Vec<_> = shard_assignments(&s, SHARDS)
        .into_iter()
        .map(|a| (a.shard_id, a.run_range.clone(), rows_for(a.run_range)))
        .collect();
    let report = b"merged report stand-in: real reports are a few KiB of tables\n";

    let mut group = c.benchmark_group("sweep");
    group.bench_function("store_cold", |b| {
        b.iter(|| {
            store.clear(&s).expect("clear sweep dir");
            for (id, range, rows) in &shards {
                store.write_shard(&s, *id, range.clone(), rows).expect("write shard");
            }
            let (rows, stats) = store.load_merged(&s).expect("exact partition");
            store.write_report(&s, report).expect("cache report");
            (rows.row_count(), stats.fingerprint())
        })
    });

    // Leave the store populated so the warm row measures a genuine
    // cache hit against the same directory.
    group.bench_function("store_warm", |b| {
        b.iter(|| store.read_report(&s).expect("report is cached").len())
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_merge, bench_store);
criterion_main!(benches);
