//! Criterion benchmarks of the tensor library's paired kernels —
//! deterministic vs non-deterministic cost of `index_add`,
//! `scatter_reduce` and `cumsum` (the productivity/performance theme of
//! §IV).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpna_gpu_sim::GpuModel;
use fpna_tensor::context::GpuContext;
use fpna_tensor::ops::cumsum::cumsum;
use fpna_tensor::ops::index::index_add;
use fpna_tensor::ops::scatter::{scatter_reduce, ReduceOp};
use fpna_tensor::Tensor;

fn bench_torch_ops(c: &mut Criterion) {
    let n = 100_000usize;
    let rows = 1_000usize;
    let mut rng = fpna_core::rng::SplitMix64::new(3);
    let src = Tensor::from_vec(vec![n], (0..n).map(|_| rng.next_f64() * 1e6).collect());
    let index: Vec<u32> = (0..n).map(|_| rng.next_below(rows as u64) as u32).collect();
    let dst = Tensor::zeros(vec![rows]);
    let det = GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true));
    let nd = GpuContext::new(GpuModel::H100, 1).with_determinism(Some(false));

    let mut group = c.benchmark_group("torch_ops");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    group.bench_function("index_add/det", |b| {
        b.iter(|| index_add(&det, &dst, &index, std::hint::black_box(&src)).unwrap())
    });
    group.bench_function("index_add/nd", |b| {
        let mut run = 0u64;
        b.iter(|| {
            run += 1;
            index_add(&nd.for_run(run), &dst, &index, std::hint::black_box(&src)).unwrap()
        })
    });
    group.bench_function("scatter_reduce_sum/nd", |b| {
        let mut run = 0u64;
        b.iter(|| {
            run += 1;
            scatter_reduce(
                &nd.for_run(run),
                &dst,
                &index,
                std::hint::black_box(&src),
                ReduceOp::Sum,
            )
            .unwrap()
        })
    });
    group.bench_function("cumsum/det", |b| {
        b.iter(|| cumsum(&det, std::hint::black_box(&src)).unwrap())
    });
    group.bench_function("cumsum/nd", |b| {
        let mut run = 0u64;
        b.iter(|| {
            run += 1;
            cumsum(&nd.for_run(run), std::hint::black_box(&src)).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_torch_ops);
criterion_main!(benches);
