//! Criterion benchmarks of the GraphSAGE pipeline: one training epoch
//! and one inference pass, deterministic vs non-deterministic, plus the
//! LPU inference execution.

use criterion::{criterion_group, criterion_main, Criterion};
use fpna_gpu_sim::GpuModel;
use fpna_nn::cost::lpu_inference;
use fpna_nn::graph::{synthetic_cora, CoraParams};
use fpna_nn::model::{GraphSage, TrainConfig};
use fpna_nn::sage::Aggregation;
use fpna_tensor::context::GpuContext;

fn bench_gnn(c: &mut Criterion) {
    let mut p = CoraParams::tiny();
    p.nodes = 400;
    p.features = 128;
    p.links = 1_200;
    let ds = synthetic_cora(p, 4);
    let cfg = TrainConfig {
        hidden: 16,
        lr: 0.5,
        epochs: 1,
        init_seed: 5,
        aggregation: Aggregation::Mean,
    };
    let det = GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true));
    let nd = GpuContext::new(GpuModel::H100, 1).with_determinism(Some(false));

    let mut group = c.benchmark_group("gnn");
    group.sample_size(10);
    group.bench_function("train_epoch/det", |b| {
        b.iter(|| {
            let mut model =
                GraphSage::new(ds.features.shape()[1], cfg.hidden, ds.num_classes, &cfg);
            model.train_epoch(&det, &ds, cfg.lr).unwrap()
        })
    });
    group.bench_function("train_epoch/nd", |b| {
        let mut run = 0u64;
        b.iter(|| {
            run += 1;
            let mut model =
                GraphSage::new(ds.features.shape()[1], cfg.hidden, ds.num_classes, &cfg);
            model.train_epoch(&nd.for_run(run), &ds, cfg.lr).unwrap()
        })
    });
    let model = GraphSage::new(ds.features.shape()[1], cfg.hidden, ds.num_classes, &cfg);
    group.bench_function("inference/det", |b| {
        b.iter(|| model.predict(&det, &ds).unwrap())
    });
    group.bench_function("inference/nd", |b| {
        let mut run = 0u64;
        b.iter(|| {
            run += 1;
            model.predict(&nd.for_run(run), &ds).unwrap()
        })
    });
    group.bench_function("inference/lpu", |b| {
        b.iter(|| lpu_inference(&ds, &model).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_gnn);
criterion_main!(benches);
