//! Criterion benchmarks of the simulated GPU reduction kernels' value
//! paths (Table 4's algorithms; the *timings* in Table 4 come from the
//! calibrated cost model — this measures the simulator itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fpna_gpu_sim::reduce::block_partials;
use fpna_gpu_sim::{GpuDevice, GpuModel, KernelParams, ReduceKernel, ScheduleKind};

fn bench_reduce(c: &mut Criterion) {
    let n = 1_000_000usize;
    let mut rng = fpna_core::rng::SplitMix64::new(2);
    let xs: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0).collect();
    let device = GpuDevice::new(GpuModel::V100);
    let params = KernelParams::new(128, 512);
    let mut group = c.benchmark_group("reduce_kernels");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    for kernel in ReduceKernel::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            &xs,
            |b, xs| {
                let mut run = 0u64;
                b.iter(|| {
                    run += 1;
                    device
                        .reduce(
                            kernel,
                            std::hint::black_box(xs),
                            params,
                            &ScheduleKind::Seeded(3).for_run(run),
                        )
                        .unwrap()
                        .value
                })
            },
        );
    }
    group.finish();
}

/// The single-run deterministic first stage at the paper's Fig 1
/// geometry (`Nt = 64, Nb = 7813`) — watches the per-block scratch
/// hoisting (one lane buffer per worker instead of one allocation per
/// block) and the intra-run row-blocking of a single launch.
fn bench_block_partials(c: &mut Criterion) {
    let n = 1_000_000usize;
    let mut rng = fpna_core::rng::SplitMix64::new(3);
    let xs: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0).collect();
    let params = KernelParams::fig1();
    let mut group = c.benchmark_group("reduce_kernels");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    group.bench_with_input(
        BenchmarkId::from_parameter("block_partials_fig1"),
        &xs,
        |b, xs| b.iter(|| block_partials(std::hint::black_box(xs), params)),
    );
    group.finish();
}

criterion_group!(benches, bench_reduce, bench_block_partials);
criterion_main!(benches);
