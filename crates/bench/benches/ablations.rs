//! Timing ablations: pairwise leaf size, exact-accumulator overhead,
//! scheduler-kind overhead in the simulator. (The accuracy/variability
//! ablations are in the `ablations` *binary*.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fpna_gpu_sim::{ScheduleKind, Scheduler};
use fpna_summation::exact::exact_sum;
use fpna_summation::{neumaier_sum, pairwise_sum_with_leaf, serial_sum};

fn bench_leaf_sizes(c: &mut Criterion) {
    let n = 262_144usize;
    let mut rng = fpna_core::rng::SplitMix64::new(5);
    let xs: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    let mut group = c.benchmark_group("ablation_block_size");
    group.throughput(Throughput::Elements(n as u64));
    for leaf in [8usize, 32, 128, 512, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(leaf), &xs, |b, xs| {
            b.iter(|| pairwise_sum_with_leaf(std::hint::black_box(xs), leaf))
        });
    }
    group.finish();
}

fn bench_accumulators(c: &mut Criterion) {
    let n = 65_536usize;
    let mut rng = fpna_core::rng::SplitMix64::new(6);
    let xs: Vec<f64> = (0..n).map(|_| rng.next_f64() * 1e6).collect();
    let mut group = c.benchmark_group("ablation_accumulator");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("serial", |b| b.iter(|| serial_sum(std::hint::black_box(&xs))));
    group.bench_function("neumaier", |b| {
        b.iter(|| neumaier_sum(std::hint::black_box(&xs)))
    });
    group.bench_function("exact", |b| b.iter(|| exact_sum(std::hint::black_box(&xs))));
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let scheduler = Scheduler::new(320);
    let nb = 7_813u32;
    let mut group = c.benchmark_group("ablation_scheduler");
    group.throughput(Throughput::Elements(nb as u64));
    for (name, kind) in [
        ("wave_biased", ScheduleKind::Seeded(7)),
        ("uniform", ScheduleKind::UniformRandom(7)),
        ("in_order", ScheduleKind::InOrder),
    ] {
        group.bench_function(name, |b| {
            let mut run = 0u64;
            b.iter(|| {
                run += 1;
                scheduler.block_finish_order(nb, &kind.for_run(run))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_leaf_sizes, bench_accumulators, bench_scheduler);
criterion_main!(benches);
