//! Fig 5: tensor variability `Vermv` vs reduction ratio for
//! `scatter_reduce(sum)`, `scatter_reduce(mean)` (2000-element arrays)
//! and `index_add` (100 × 100), with bootstrap error bars. The paper
//! plots `Vermv × 1e7`.
//!
//! `cargo run --release -p fpna-bench --bin fig5 [--runs 40] [--threads N] [--paper-scale]`

use fpna_gpu_sim::GpuModel;
use fpna_stats::bootstrap::bootstrap_mean;
use fpna_tensor::sweep::{ratio_experiment, RatioOp};

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let executor = args.executor();
    let runs = args.size("runs", 40, 1_000);
    let seed = fpna_bench::arg_u64("seed", 45);
    fpna_bench::banner(
        "Fig 5",
        "Vermv vs reduction ratio (x 1e7; scatter_reduce n=2000, index_add n=100x100)",
        &format!("{runs} runs per point (paper: 1000)"),
    );
    println!(
        "{:>4}  {:>26}  {:>26}  {:>26}",
        "R",
        "scatter reduce(sum)",
        "scatter reduce(mean)",
        "index add"
    );
    for r10 in 1..=10 {
        let r = r10 as f64 / 10.0;
        let mut cells = Vec::new();
        for (op, dim) in [
            (RatioOp::ScatterReduceSum, 2000usize),
            (RatioOp::ScatterReduceMean, 2000),
            (RatioOp::IndexAdd, 100),
        ] {
            let report = ratio_experiment(GpuModel::H100, op, dim, r, runs, seed ^ r10, &executor);
            let vermvs: Vec<f64> = report.per_run.iter().map(|&(v, _)| v * 1e7).collect();
            let b = bootstrap_mean(&vermvs, 200, seed ^ 0xF16);
            cells.push(format!("{:.4} +- {:.4}", b.estimate, b.std_error));
        }
        println!(
            "{:>4.1}  {:>26}  {:>26}  {:>26}",
            r, cells[0], cells[1], cells[2]
        );
    }
    args.finish();
}
