//! Fig 4: count variability `Vc` vs reduction ratio for
//! `scatter_reduce(sum)`, `scatter_reduce(mean)` (2000-element 1-D
//! arrays) and `index_add` (100 × 100 arrays), with bootstrap error
//! bars.
//!
//! `cargo run --release -p fpna-bench --bin fig4 [--runs 40] [--threads N] [--paper-scale]`

use fpna_gpu_sim::GpuModel;
use fpna_stats::bootstrap::bootstrap_mean;
use fpna_tensor::sweep::{ratio_experiment, RatioOp};

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let executor = args.executor();
    let runs = args.size("runs", 40, 1_000);
    let seed = fpna_bench::arg_u64("seed", 44);
    fpna_bench::banner(
        "Fig 4",
        "Vc vs reduction ratio (scatter_reduce n=2000, index_add n=100x100)",
        &format!("{runs} runs per point (paper: 1000)"),
    );
    println!(
        "{:>4}  {:>26}  {:>26}  {:>26}",
        "R",
        "scatter reduce(sum)",
        "scatter reduce(mean)",
        "index add"
    );
    for r10 in 1..=10 {
        let r = r10 as f64 / 10.0;
        let mut cells = Vec::new();
        for (op, dim) in [
            (RatioOp::ScatterReduceSum, 2000usize),
            (RatioOp::ScatterReduceMean, 2000),
            (RatioOp::IndexAdd, 100),
        ] {
            let report = ratio_experiment(GpuModel::H100, op, dim, r, runs, seed ^ r10, &executor);
            let vcs: Vec<f64> = report.per_run.iter().map(|&(_, vc)| vc).collect();
            let b = bootstrap_mean(&vcs, 200, seed ^ 0xB007);
            cells.push(format!("{:.5} +- {:.5}", b.estimate, b.std_error));
        }
        println!(
            "{:>4.1}  {:>26}  {:>26}  {:>26}",
            r, cells[0], cells[1], cells[2]
        );
    }
    args.finish();
}
