//! Table 9 (beyond the paper): interconnect-induced variability vs
//! cost — the concluding future-work item, measured.
//!
//! Sweeps rank count × topology × jitter for a fanout-4 reduction
//! tree executed as an event-driven protocol on the `fpna-net`
//! fabric. Three regimes per topology:
//!
//! * **arrival order, jittered** — combine order emerges from message
//!   timing; variability appears and *grows with fabric depth*
//!   (flat switch → fat tree → node/NIC/switch hierarchy), because
//!   per-hop jitter accumulates over longer, slower paths;
//! * **software-scheduled** (rank order, zero jitter) — the LPU-style
//!   interconnect: bitwise identical results *and* timestamps;
//! * **reproducible** (exact accumulators in the messages) — bitwise
//!   identical across every topology and jitter seed, at a modeled
//!   bandwidth overhead (70× payload for fp64) that the simulated
//!   elapsed time and the analytic α–β model both price.
//!
//! `--segments a,b,…` (default `1`) additionally sweeps NCCL-style
//! payload pipelining: the tree runs as `SegmentedTree` with each
//! listed chunk count. Chunking never changes the bits of any regime
//! (per element the fold order is that of the unsegmented tree, and
//! reproducible mode is content-addressed anyway) — it only moves the
//! clock, which the elapsed/overhead columns and the segmented α–β
//! model price.
//!
//! `--load a,b,…` (default `0`) sweeps multi-tenant contention: seeded
//! background senders share the fabric at each offered-load factor,
//! reordering foreground arrivals through link queueing (the fabric's
//! *other* nondeterminism source — no extra jitter involved). Arrival-
//! order variability grows with offered load on the fat tree (self-
//! checked when more than one load is listed), the software-scheduled
//! rows stay bit-identical with zero timing spread (the tenants are
//! seeded too), and reproducible mode stays bitwise at any load.
//! `--route ecmp` additionally routes every message over a seeded
//! equal-cost path choice (the fat tree here has 4 spines).
//!
//! `--link-stats` appends, per topology, a table of the busiest links
//! of one representative contended run (highest offered load, jitter
//! 0.1): messages carried, total queue wait, and peak queue depth —
//! the [`fpna_net::NetSim::link_stats`] view, labelled by endpoint.
//!
//! `cargo run --release -p fpna-bench --bin table9 [--len 4096] [--runs 25] [--fanout 4] [--seed 9]
//!  [--segments 1,8,32] [--load 0,0.3,0.8] [--route fixed|ecmp] [--link-stats]
//!  [--threads N] [--paper-scale] [--trace out.json] [--profile]`

use fpna_collectives::{allreduce_on, Algorithm, NetConfig, Ordering};
use fpna_core::metrics::scalar_variability;
use fpna_core::report::{mean_std, Table};
use fpna_core::rng::{derive_seed, SplitMix64};
use fpna_net::{sweep_seeds, CostModel, LinkSpec, RouteSelect, SeedSweep, Topology};
use fpna_summation::exact::ExactAccumulator;

/// Index of the fat tree in [`topologies`] — the fabric the
/// variability-vs-offered-load check reads.
const FAT_TREE_IDX: usize = 1;

fn topologies(p: usize) -> Vec<Topology> {
    assert!(p.is_multiple_of(8), "the sweep assumes rank counts divisible by 8");
    vec![
        Topology::flat_switch(p, LinkSpec::new(500.0, 25.0)),
        // 4 spines: cross-group pairs expose 4 equal-cost paths, so
        // `--route ecmp` has genuine choice (Fixed sticks to spine 0).
        Topology::fat_tree_spines(p, 8, 4, LinkSpec::new(500.0, 25.0), LinkSpec::new(1_500.0, 50.0)),
        Topology::hierarchical(
            p / 8,
            8,
            LinkSpec::new(200.0, 100.0), // intra-node (NVLink-ish)
            LinkSpec::new(500.0, 50.0),  // node switch → NIC
            LinkSpec::new(5_000.0, 25.0), // inter-node (IB-ish)
        ),
    ]
}

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let executor = args.executor();
    let len = fpna_bench::arg_usize("len", 4_096);
    let runs = args.size("runs", 25, 500);
    let fanout = fpna_bench::arg_usize("fanout", 4);
    let seed = fpna_bench::arg_u64("seed", 9);
    let segments: Vec<usize> = fpna_bench::arg_string("segments")
        .map(|v| {
            v.split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--segments expects integers, got {s}"))
                })
                .collect()
        })
        .unwrap_or_else(|| vec![1]);
    assert!(
        !segments.is_empty() && segments.iter().all(|&k| k >= 1),
        "--segments expects a comma-separated list of positive chunk counts"
    );
    let loads: Vec<f64> = fpna_bench::arg_string("load")
        .map(|v| {
            v.split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--load expects offered-load factors, got {s}"))
                })
                .collect()
        })
        .unwrap_or_else(|| vec![0.0]);
    assert!(
        !loads.is_empty() && loads.iter().all(|&l| l.is_finite() && l >= 0.0),
        "--load expects a comma-separated list of non-negative offered-load factors"
    );
    assert!(
        loads.windows(2).all(|w| w[0] < w[1]),
        "--load expects strictly increasing offered-load factors"
    );
    let link_stats = fpna_bench::arg_flag("link-stats");
    let ecmp = match fpna_bench::arg_string("route").as_deref() {
        None | Some("fixed") => false,
        Some("ecmp") => true,
        Some(other) => panic!("--route expects fixed|ecmp, got {other}"),
    };
    // Seeded route choice per message stream: a pure function of the
    // sweep seed, so every run replays.
    let route_for = |s: u64| {
        if ecmp {
            RouteSelect::SeededEcmp { seed: derive_seed(s, 0xEC) }
        } else {
            RouteSelect::Fixed
        }
    };
    // Keep the default (unsegmented) banner text byte-stable.
    let seg_note = if segments == [1] {
        String::new()
    } else {
        format!(
            ", segment sweep {{{}}}",
            segments.iter().map(|k| k.to_string()).collect::<Vec<_>>().join(",")
        )
    };
    let load_note = if loads == [0.0] {
        String::new()
    } else {
        format!(
            ", offered-load sweep {{{}}}",
            loads.iter().map(|l| l.to_string()).collect::<Vec<_>>().join(",")
        )
    };
    let route_note = if ecmp { ", seeded ECMP routing" } else { "" };
    fpna_bench::banner(
        "Table 9 (interconnect)",
        "timing-driven allreduce variability vs cost, by topology depth",
        &format!(
            "{len}-element vectors, {runs} runs/config, fanout-{fanout} tree{seg_note}{load_note}{route_note}"
        ),
    );

    let alg = Algorithm::KAryTree { fanout };
    let jitter_levels = [0.1, 0.3];
    let mut all_checks_pass = true;

    for p in [32usize, 64] {
        let mut rng = SplitMix64::new(derive_seed(seed, p as u64));
        let ranks: Vec<Vec<f64>> = (0..p)
            .map(|_| (0..len).map(|_| rng.next_f64() * 1e8 - 5e7).collect())
            .collect();
        // The one true answer every reproducible run must hit, bit for
        // bit — computed without any network at all.
        let exact_reference = fpna_collectives::allreduce(&ranks, alg, Ordering::Reproducible);

        // Measured span-encoded payload sizes per element: what the
        // reduce (up) phase actually ships. A leaf message carries one
        // value's accumulator; the payload grows toward the root as
        // contributions widen the occupied limb span, so the converged
        // (all-ranks) accumulator is the widest payload any hop sees.
        // Both sit far below the dense WIRE_BYTES upper bound for
        // narrow-dynamic-range data.
        let mean_wire = |per_elem: &dyn Fn(usize) -> ExactAccumulator| -> f64 {
            let total: usize = (0..len)
                .map(|i| {
                    let mut acc = per_elem(i);
                    acc.normalize();
                    acc.wire_len()
                })
                .sum();
            total as f64 / len as f64
        };
        let leaf_payload = mean_wire(&|i| {
            let mut a = ExactAccumulator::new();
            a.add(ranks[0][i]);
            a
        });
        let converged_payload = mean_wire(&|i| {
            let mut a = ExactAccumulator::new();
            for r in &ranks {
                a.add(r[i]);
            }
            a
        });
        println!(
            "measured wire payload (span-encoded): leaf {leaf_payload:.1} B/elem, \
             converged {converged_payload:.1} B/elem; dense upper bound {} B/elem",
            ExactAccumulator::WIRE_BYTES
        );
        println!();

        let mut table = Table::new([
            "topology",
            "hops",
            "schedule",
            "seg",
            "jitter",
            "load",
            "differing",
            "mean Vc",
            "mean Vermv",
            "max |Vs[0]|",
            "elapsed µs",
            "overhead",
        ])
        .with_title(format!("p = {p} ranks"));

        // mean Vc per (jitter level, segment count, topology) for the
        // depth-growth check — quiet-fabric rows only, since contention
        // reshapes the depth profile.
        let mut growth: Vec<Vec<Vec<f64>>> =
            vec![vec![Vec::new(); segments.len()]; jitter_levels.len()];
        // mean Vc per (jitter level, segment count, load) on the fat
        // tree, in `loads` order, for the variability-vs-offered-load
        // check.
        let mut load_vc: Vec<Vec<Vec<f64>>> =
            vec![vec![Vec::new(); segments.len()]; jitter_levels.len()];

        for (ti, topo) in topologies(p).into_iter().enumerate() {
            let hops = topo.diameter_hops();
            for (ki, &segs) in segments.iter().enumerate() {
                // `SegmentedTree` at one chunk is the plain tree; values
                // are bitwise those of the unsegmented algorithm at every
                // chunk count — segmentation only pipelines the clock.
                let alg = if segs == 1 { alg } else { Algorithm::SegmentedTree { fanout, segments: segs } };

                for &load in &loads {
                // -- software-scheduled: zero jitter, rank-ordered folds --
                // One bg/route seed for the whole row: the tenants replay
                // identically every run, so the bitwise + zero-timing-
                // spread guarantee must survive any offered load.
                let base_cfg = NetConfig::default()
                    .with_load(load, derive_seed(seed, 0xB6))
                    .with_route(route_for(derive_seed(seed, 0xB6)));
                let sched = sweep_seeds(
                    &executor,
                    &allreduce_on(&topo, &ranks, alg, Ordering::RankOrder, &base_cfg).values,
                    &(0..runs as u64).collect::<Vec<_>>(),
                    |_| {
                        let out = allreduce_on(&topo, &ranks, alg, Ordering::RankOrder, &base_cfg);
                        (out.values, out.elapsed_ns)
                    },
                );
                let plain_elapsed = sched.elapsed_ns.mean;
                // "zero timing spread" = every run took the identical
                // simulated time (min == max exactly; the std estimate
                // itself carries rounding noise).
                let zero_spread = sched.elapsed_ns.min.to_bits() == sched.elapsed_ns.max.to_bits();
                if !sched.bitwise_reproducible() || !zero_spread {
                    all_checks_pass = false;
                }
                table.push_row([
                    topo.name().to_string(),
                    hops.to_string(),
                    "sw-scheduled".into(),
                    segs.to_string(),
                    "0".into(),
                    format!("{load}"),
                    format!("0/{runs}"),
                    format!("{:.4}", sched.variability.vc.mean),
                    format!("{:.3e}", sched.variability.vermv.mean),
                    "0".into(),
                    mean_std(sched.elapsed_ns.mean / 1e3, sched.elapsed_ns.std_dev / 1e3, 1),
                    "1.00x".into(),
                ]);

                // -- arrival order at each jitter level --
                for (j, &frac) in jitter_levels.iter().enumerate() {
                    let run = |s: u64| {
                        // The tenants (and, under ECMP, the route draws)
                        // differ per run, exactly like the jitter seed:
                        // each run is a different day on a shared fabric.
                        let cfg = NetConfig {
                            jitter_frac: frac,
                            ..NetConfig::default()
                        }
                        .with_load(load, derive_seed(s, 0x10AD))
                        .with_route(route_for(s));
                        let out = allreduce_on(
                            &topo,
                            &ranks,
                            alg,
                            Ordering::ArrivalOrder { seed: derive_seed(seed, s) },
                            &cfg,
                        );
                        (out.values, out.elapsed_ns)
                    };
                    let (reference, _) = run(0);
                    let seeds: Vec<u64> = (1..=runs as u64).collect();
                    // Collect the raw outputs (in seed order) so the extra
                    // first-element |Vs| statistic comes from the same runs
                    // the report summarises.
                    let outputs = executor.map_runs(seeds.len(), |i| run(seeds[i]));
                    let vs_max = outputs
                        .iter()
                        .map(|(v, _)| scalar_variability(v[0], reference[0]).abs())
                        .fold(0.0f64, f64::max);
                    let sweep = SeedSweep::from_outputs(&reference, &outputs);
                    if load == 0.0 {
                        growth[j][ki].push(sweep.variability.vc.mean);
                    }
                    if ti == FAT_TREE_IDX {
                        load_vc[j][ki].push(sweep.variability.vc.mean);
                    }
                    table.push_row([
                        topo.name().to_string(),
                        hops.to_string(),
                        "arrival order".into(),
                        segs.to_string(),
                        format!("{frac}"),
                        format!("{load}"),
                        format!(
                            "{}/{runs}",
                            runs - sweep.variability.bitwise_identical_runs
                        ),
                        format!("{:.4}", sweep.variability.vc.mean),
                        format!("{:.3e}", sweep.variability.vermv.mean),
                        format!("{vs_max:.3e}"),
                        mean_std(sweep.elapsed_ns.mean / 1e3, sweep.elapsed_ns.std_dev / 1e3, 1),
                        format!("{:.2}x", sweep.elapsed_ns.mean / plain_elapsed),
                    ]);
                }

                // -- reproducible: exact accumulators on a jittered fabric --
                let seeds: Vec<u64> = (0..runs as u64).map(|s| derive_seed(seed ^ 0xE4A7, s)).collect();
                let repro = sweep_seeds(&executor, &exact_reference, &seeds, |s| {
                    let cfg = NetConfig::default()
                        .with_jitter_seed(s)
                        .with_load(load, derive_seed(s, 0x10AD))
                        .with_route(route_for(s));
                    let out =
                        allreduce_on(&topo, &ranks, alg, Ordering::Reproducible, &cfg);
                    (out.values, out.elapsed_ns)
                });
                if !repro.bitwise_reproducible() {
                    all_checks_pass = false;
                }
                // Only the reduce (up) phase ships accumulators; the
                // broadcast carries rounded f64s. So the inflating part is
                // the up-phase bandwidth term (half the model's symmetric
                // bandwidth), and everything else (latencies both ways +
                // down-phase bandwidth) is charged at plain size.
                let cost = CostModel::from_topology(&topo);
                let depth = CostModel::tree_depth(p, fanout) as f64;
                let (plain_total_ns, up_bandwidth_ns) = if segs == 1 {
                    (
                        cost.tree_allreduce_ns(p, fanout, (len * 8) as u64),
                        depth * fanout as f64 * (len * 8) as f64 * cost.beta_ns_per_byte,
                    )
                } else {
                    let stages = 2.0 * depth + (segs as f64 - 1.0);
                    let total_bw =
                        stages * fanout as f64 * (len * 8) as f64 * cost.beta_ns_per_byte / segs as f64;
                    (
                        cost.segmented_tree_allreduce_ns(p, fanout, (len * 8) as u64, segs),
                        total_bw / 2.0,
                    )
                };
                // Payload-accurate model: price the up phase at the
                // measured converged span-encoded size (the widest payload
                // any hop carries) instead of the dense worst case.
                let modeled = CostModel::reproducible_overhead(
                    plain_total_ns - up_bandwidth_ns,
                    up_bandwidth_ns,
                    converged_payload.ceil() as usize,
                );
                table.push_row([
                    topo.name().to_string(),
                    hops.to_string(),
                    "reproducible".into(),
                    segs.to_string(),
                    format!("{}", NetConfig::default().jitter_frac),
                    format!("{load}"),
                    format!("0/{runs}"),
                    format!("{:.4}", repro.variability.vc.mean),
                    format!("{:.3e}", repro.variability.vermv.mean),
                    "0".into(),
                    mean_std(repro.elapsed_ns.mean / 1e3, repro.elapsed_ns.std_dev / 1e3, 1),
                    format!(
                        "{:.2}x (model {modeled:.2}x)",
                        repro.elapsed_ns.mean / plain_elapsed
                    ),
                ]);
                }
            }
        }

        println!("{}", table.render());

        // --link-stats: per-link queueing view of one representative
        // contended run per topology (highest offered load, jitter
        // 0.1, arrival order) — which links actually back up.
        if link_stats {
            let load = *loads.last().unwrap();
            for topo in topologies(p) {
                let cfg = NetConfig {
                    jitter_frac: 0.1,
                    ..NetConfig::default()
                }
                .with_load(load, derive_seed(seed, 0x10AD))
                .with_route(route_for(seed))
                .with_link_stats(true);
                let out = allreduce_on(
                    &topo,
                    &ranks,
                    alg,
                    Ordering::ArrivalOrder { seed: derive_seed(seed, 1) },
                    &cfg,
                );
                let stats = out
                    .link_stats
                    .expect("with_link_stats(true) collects per-link stats");
                let mut busiest: Vec<(usize, &fpna_net::LinkStats)> =
                    stats.iter().enumerate().filter(|(_, s)| s.messages > 0).collect();
                busiest.sort_by(|(la, a), (lb, b)| {
                    b.wait_ns
                        .partial_cmp(&a.wait_ns)
                        .unwrap()
                        .then_with(|| b.messages.cmp(&a.messages))
                        .then_with(|| la.cmp(lb))
                });
                let active = busiest.len();
                busiest.truncate(10);
                let mut lt = Table::new(["link", "messages", "wait µs", "max depth"]).with_title(
                    format!(
                        "{} — busiest links (load {load}, jitter 0.1, {active}/{} links active)",
                        topo.name(),
                        topo.num_links(),
                    ),
                );
                for (l, s) in busiest {
                    lt.push_row([
                        format!("L{l} {}", topo.link_label(l)),
                        s.messages.to_string(),
                        format!("{:.1}", s.wait_ns / 1e3),
                        s.max_depth.to_string(),
                    ]);
                }
                println!("{}", lt.render());
            }
        }

        // Accumulated path jitter grows strictly with fabric depth, so
        // at every jitter level mean Vc must be monotone in hop count
        // and nonzero on the deepest fabric (shallow fabrics may stay
        // at exactly zero below their reorder threshold — that *is*
        // the depth transition).
        for (j, &frac) in jitter_levels.iter().enumerate() {
            for (ki, &segs) in segments.iter().enumerate() {
                let seg_note = if segments == [1] {
                    String::new()
                } else {
                    format!(", segments {segs}")
                };
                // Depth growth is a quiet-fabric property; it is only
                // collected (and checked) when 0 is among the loads.
                let vcs = &growth[j][ki];
                if !vcs.is_empty() {
                    let monotone = vcs.windows(2).all(|w| w[0] <= w[1] + 1e-12);
                    let nonzero_deep = *vcs.last().unwrap() > 0.0;
                    if !monotone || !nonzero_deep {
                        all_checks_pass = false;
                    }
                    println!(
                        "growth check (jitter {frac}{seg_note}): mean Vc by depth = {} -> {}",
                        vcs.iter()
                            .map(|v| format!("{v:.4}"))
                            .collect::<Vec<_>>()
                            .join(" <= "),
                        if monotone && nonzero_deep { "PASS" } else { "FAIL" }
                    );
                }
                // Contention is a *second* nondeterminism source: on the
                // fat tree, arrival-order variability must strictly grow
                // with offered load.
                if loads.len() > 1 {
                    let vcs = &load_vc[j][ki];
                    let strictly_growing = vcs.windows(2).all(|w| w[1] > w[0]);
                    if !strictly_growing {
                        all_checks_pass = false;
                    }
                    println!(
                        "load check (jitter {frac}{seg_note}): fat-tree mean Vc by offered load = {} -> {}",
                        vcs.iter()
                            .map(|v| format!("{v:.4}"))
                            .collect::<Vec<_>>()
                            .join(" < "),
                        if strictly_growing { "PASS" } else { "FAIL" }
                    );
                }
            }
        }
        println!();
    }

    println!(
        "summary: software-scheduled runs bit-identical with zero timing spread; \
         arrival-order variability grows with fabric depth; reproducible mode \
         bit-identical across every topology and jitter seed at a bandwidth-\n\
         dominated overhead (span-encoded accumulators on the wire vs 8B plain; \
         dense upper bound {}B/element).",
        ExactAccumulator::WIRE_BYTES
    );
    args.finish();
    if all_checks_pass {
        println!("all acceptance checks PASS");
    } else {
        println!("SOME ACCEPTANCE CHECKS FAILED");
        std::process::exit(1);
    }
}
