//! Table 9 (beyond the paper): interconnect-induced variability vs
//! cost — the concluding future-work item, measured.
//!
//! Sweeps rank count × topology × jitter for a fanout-4 reduction
//! tree executed as an event-driven protocol on the `fpna-net`
//! fabric. Three regimes per topology:
//!
//! * **arrival order, jittered** — combine order emerges from message
//!   timing; variability appears and *grows with fabric depth*
//!   (flat switch → fat tree → node/NIC/switch hierarchy), because
//!   per-hop jitter accumulates over longer, slower paths;
//! * **software-scheduled** (rank order, zero jitter) — the LPU-style
//!   interconnect: bitwise identical results *and* timestamps;
//! * **reproducible** (exact accumulators in the messages) — bitwise
//!   identical across every topology and jitter seed, at a modeled
//!   bandwidth overhead (70× payload for fp64) that the simulated
//!   elapsed time and the analytic α–β model both price.
//!
//! `--segments a,b,…` (default `1`) additionally sweeps NCCL-style
//! payload pipelining: the tree runs as `SegmentedTree` with each
//! listed chunk count. Chunking never changes the bits of any regime
//! (per element the fold order is that of the unsegmented tree, and
//! reproducible mode is content-addressed anyway) — it only moves the
//! clock, which the elapsed/overhead columns and the segmented α–β
//! model price.
//!
//! `--load a,b,…` (default `0`) sweeps multi-tenant contention: seeded
//! background senders share the fabric at each offered-load factor,
//! reordering foreground arrivals through link queueing (the fabric's
//! *other* nondeterminism source — no extra jitter involved). Arrival-
//! order variability grows with offered load on the fat tree (self-
//! checked when more than one load is listed), the software-scheduled
//! rows stay bit-identical with zero timing spread (the tenants are
//! seeded too), and reproducible mode stays bitwise at any load.
//! `--route ecmp` additionally routes every message over a seeded
//! equal-cost path choice (the fat tree here has 4 spines).
//!
//! `--place aware` appends, per topology × load, a placement A/B: the
//! oblivious fanout-k tree vs the topology-aware hierarchical reduce
//! (`Algorithm::Hierarchical`, reduce within each fabric group before
//! crossing the NIC/spine). Reports modeled cost from the per-leg α–β
//! extractors, measured elapsed medians, NIC-crossing byte counts
//! (the engine's cross-group counters), and the arrival-order
//! variability delta; self-checks that aware placement beats the
//! oblivious tree on both modeled cost and NIC bytes wherever the
//! fabric has more than one group.
//!
//! `--link-stats` appends, per topology, a table of the busiest links
//! of one representative contended run (highest offered load, jitter
//! 0.1): messages carried, total queue wait, and peak queue depth —
//! the [`fpna_net::NetSim::link_stats`] view, labelled by endpoint.
//!
//! Speaks the sweep protocol (`--emit-spec` / `--shard-id …` /
//! `--from-shards …`, see `fpna-sweep`): every (rank count, topology,
//! segment count, load, schedule) cell is seeded by global run index,
//! so any process sharding of `0..runs` merges to byte-identical
//! output — including the acceptance checks and the exit code, which
//! are pure functions of the merged rows.
//!
//! `cargo run --release -p fpna-bench --bin table9 [--len 4096] [--runs 25] [--fanout 4] [--seed 9]
//!  [--segments 1,8,32] [--load 0,0.3,0.8] [--route fixed|ecmp] [--place oblivious|aware] [--link-stats]
//!  [--threads N] [--paper-scale] [--trace out.json] [--profile]`

use fpna_collectives::{allreduce_on, Algorithm, NetConfig, Ordering};
use fpna_core::executor::RunExecutor;
use fpna_core::harness::RunSummary;
use fpna_core::metrics::{scalar_variability, ArrayComparison};
use fpna_core::report::{mean_std, Table};
use fpna_core::rng::{derive_seed, SplitMix64};
use fpna_net::{CostModel, LinkSpec, RouteSelect, SeedSweep, Topology};
use fpna_summation::exact::ExactAccumulator;
use fpna_sweep::{SweepRows, SweepSpec};

/// Index of the fat tree in [`topologies`] — the fabric the
/// variability-vs-offered-load check reads.
const FAT_TREE_IDX: usize = 1;

const JITTER_LEVELS: [f64; 2] = [0.1, 0.3];

fn topologies(p: usize) -> Vec<Topology> {
    assert!(p.is_multiple_of(8), "the sweep assumes rank counts divisible by 8");
    vec![
        Topology::flat_switch(p, LinkSpec::new(500.0, 25.0)),
        // 4 spines: cross-group pairs expose 4 equal-cost paths, so
        // `--route ecmp` has genuine choice (Fixed sticks to spine 0).
        Topology::fat_tree_spines(p, 8, 4, LinkSpec::new(500.0, 25.0), LinkSpec::new(1_500.0, 50.0)),
        Topology::hierarchical(
            p / 8,
            8,
            LinkSpec::new(200.0, 100.0), // intra-node (NVLink-ish)
            LinkSpec::new(500.0, 50.0),  // node switch → NIC
            LinkSpec::new(5_000.0, 25.0), // inter-node (IB-ish)
        ),
    ]
}

/// Everything that parameterises the sweep — one value per spec arg.
struct Cfg {
    len: usize,
    runs: usize,
    fanout: usize,
    seed: u64,
    segments: Vec<usize>,
    loads: Vec<f64>,
    link_stats: bool,
    ecmp: bool,
    /// `--place aware`: additionally A/B the topology-aware placement
    /// (hierarchical reduce) against the oblivious tree per topology —
    /// measured + modeled cost, NIC-crossing bytes, variability delta.
    aware: bool,
}

impl Cfg {
    fn alg(&self) -> Algorithm {
        Algorithm::KAryTree { fanout: self.fanout }
    }

    /// Seeded route choice per message stream: a pure function of the
    /// sweep seed, so every run replays.
    fn route_for(&self, s: u64) -> RouteSelect {
        if self.ecmp {
            RouteSelect::SeededEcmp { seed: derive_seed(s, 0xEC) }
        } else {
            RouteSelect::Fixed
        }
    }

    /// The per-rank input vectors for rank count `p` — a pure function
    /// of `(seed, p, len)`, recomputed identically by every process.
    fn ranks(&self, p: usize) -> Vec<Vec<f64>> {
        let mut rng = SplitMix64::new(derive_seed(self.seed, p as u64));
        (0..p)
            .map(|_| (0..self.len).map(|_| rng.next_f64() * 1e8 - 5e7).collect())
            .collect()
    }
}

fn cell_sched(p: usize, ti: usize, segs: usize, li: usize) -> String {
    format!("p{p}/t{ti}/k{segs}/l{li}/sched")
}

fn cell_arrival(p: usize, ti: usize, segs: usize, li: usize, j: usize) -> String {
    format!("p{p}/t{ti}/k{segs}/l{li}/ao{j}")
}

fn cell_repro(p: usize, ti: usize, segs: usize, li: usize) -> String {
    format!("p{p}/t{ti}/k{segs}/l{li}/repro")
}

/// Placement A/B cells (`--place aware` only): `pl` is `"obl"` for the
/// oblivious tree or `"awr"` for the topology-aware hierarchical run.
fn cell_place(p: usize, ti: usize, li: usize, pl: &str) -> String {
    format!("p{p}/t{ti}/l{li}/{pl}")
}

/// Per-run comparison metrics for every sweep cell, global runs in
/// `range` only. Each cell's reference (the rank-order run, the seed-0
/// arrival-order run, or the network-free exact allreduce) is a pure
/// function of the spec, recomputed per process — one extra run per
/// cell, cheap next to the run sweep it anchors.
///
/// Row columns: `[vermv, vc, max_abs_diff, len, elapsed_ns]`, plus
/// `|Vs[0]|` as a sixth column on arrival-order cells.
fn compute(cfg: &Cfg, range: std::ops::Range<usize>, executor: &RunExecutor) -> SweepRows {
    let alg = cfg.alg();
    let seed = cfg.seed;
    let mut rows = SweepRows::new();
    for p in [32usize, 64] {
        let ranks = cfg.ranks(p);
        let exact_reference = fpna_collectives::allreduce(&ranks, alg, Ordering::Reproducible);
        for (ti, topo) in topologies(p).into_iter().enumerate() {
            for &segs in &cfg.segments {
                // `SegmentedTree` at one chunk is the plain tree; values
                // are bitwise those of the unsegmented algorithm at every
                // chunk count — segmentation only pipelines the clock.
                let alg = if segs == 1 {
                    alg
                } else {
                    Algorithm::SegmentedTree { fanout: cfg.fanout, segments: segs }
                };
                for (li, &load) in cfg.loads.iter().enumerate() {
                    // -- software-scheduled: zero jitter, rank-ordered folds --
                    // One bg/route seed for the whole row: the tenants replay
                    // identically every run, so the bitwise + zero-timing-
                    // spread guarantee must survive any offered load.
                    let base_cfg = NetConfig::default()
                        .with_load(load, derive_seed(seed, 0xB6))
                        .with_route(cfg.route_for(derive_seed(seed, 0xB6)));
                    let reference =
                        allreduce_on(&topo, &ranks, alg, Ordering::RankOrder, &base_cfg).values;
                    let outputs = executor.map_run_range(range.clone(), |_| {
                        let out = allreduce_on(&topo, &ranks, alg, Ordering::RankOrder, &base_cfg);
                        (out.values, out.elapsed_ns)
                    });
                    for (i, (v, dt)) in outputs.iter().enumerate() {
                        let c = ArrayComparison::compare(&reference, v);
                        rows.push(
                            &cell_sched(p, ti, segs, li),
                            range.start + i,
                            vec![c.vermv, c.vc, c.max_abs_diff, c.len as f64, *dt],
                        );
                    }

                    // -- arrival order at each jitter level --
                    for (j, &frac) in JITTER_LEVELS.iter().enumerate() {
                        let run = |s: u64| {
                            // The tenants (and, under ECMP, the route draws)
                            // differ per run, exactly like the jitter seed:
                            // each run is a different day on a shared fabric.
                            let net_cfg = NetConfig {
                                jitter_frac: frac,
                                ..NetConfig::default()
                            }
                            .with_load(load, derive_seed(s, 0x10AD))
                            .with_route(cfg.route_for(s));
                            let out = allreduce_on(
                                &topo,
                                &ranks,
                                alg,
                                Ordering::ArrivalOrder { seed: derive_seed(seed, s) },
                                &net_cfg,
                            );
                            (out.values, out.elapsed_ns)
                        };
                        // Seed 0 is the reference; global run r uses seed
                        // r + 1, matching the unsharded seed list 1..=runs.
                        let (reference, _) = run(0);
                        let outputs =
                            executor.map_run_range(range.clone(), |r| run(r as u64 + 1));
                        for (i, (v, dt)) in outputs.iter().enumerate() {
                            let c = ArrayComparison::compare(&reference, v);
                            let vs0 = scalar_variability(v[0], reference[0]).abs();
                            rows.push(
                                &cell_arrival(p, ti, segs, li, j),
                                range.start + i,
                                vec![c.vermv, c.vc, c.max_abs_diff, c.len as f64, *dt, vs0],
                            );
                        }
                    }

                    // -- reproducible: exact accumulators on a jittered fabric --
                    let outputs = executor.map_run_range(range.clone(), |r| {
                        let s = derive_seed(seed ^ 0xE4A7, r as u64);
                        let net_cfg = NetConfig::default()
                            .with_jitter_seed(s)
                            .with_load(load, derive_seed(s, 0x10AD))
                            .with_route(cfg.route_for(s));
                        let out = allreduce_on(&topo, &ranks, alg, Ordering::Reproducible, &net_cfg);
                        (out.values, out.elapsed_ns)
                    });
                    for (i, (v, dt)) in outputs.iter().enumerate() {
                        let c = ArrayComparison::compare(&exact_reference, v);
                        rows.push(
                            &cell_repro(p, ti, segs, li),
                            range.start + i,
                            vec![c.vermv, c.vc, c.max_abs_diff, c.len as f64, *dt],
                        );
                    }
                }
            }
        }
        // -- placement A/B (aware mode only): per topology × load, the
        // oblivious fanout-k tree vs the topology-aware hierarchical
        // reduce on a jittered fabric. Row: [Vc vs the placement's
        // seed-0 run, elapsed_ns, NIC-crossing bytes].
        if cfg.aware {
            for (ti, topo) in topologies(p).into_iter().enumerate() {
                for (li, &load) in cfg.loads.iter().enumerate() {
                    for (pl, alg) in [
                        ("obl", alg),
                        ("awr", Algorithm::Hierarchical { intra: cfg.fanout, inter: cfg.fanout }),
                    ] {
                        let run = |s: u64| {
                            let net_cfg = NetConfig {
                                jitter_frac: JITTER_LEVELS[0],
                                ..NetConfig::default()
                            }
                            .with_load(load, derive_seed(s, 0x10AD))
                            .with_route(cfg.route_for(s));
                            allreduce_on(
                                &topo,
                                &ranks,
                                alg,
                                Ordering::ArrivalOrder { seed: derive_seed(seed ^ 0x9ACE, s) },
                                &net_cfg,
                            )
                        };
                        let reference = run(0).values;
                        let outputs = executor.map_run_range(range.clone(), |r| {
                            let out = run(r as u64 + 1);
                            (out.values, out.elapsed_ns, out.stats.nic_bytes)
                        });
                        for (i, (v, dt, nic)) in outputs.iter().enumerate() {
                            let c = ArrayComparison::compare(&reference, v);
                            rows.push(
                                &cell_place(p, ti, li, pl),
                                range.start + i,
                                vec![c.vc, *dt, *nic as f64],
                            );
                        }
                    }
                }
            }
        }
    }
    rows
}

/// Median of a per-run column (rows arrive ordered by run index).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 { xs[n / 2] } else { (xs[n / 2 - 1] + xs[n / 2]) / 2.0 }
}

/// Rebuild the joint variability/cost summary of one cell from its
/// rows — bitwise the [`SeedSweep`] a single process computes.
fn seed_sweep(rows: &SweepRows, cell: &str) -> SeedSweep {
    SeedSweep {
        variability: rows.variability_report(cell),
        elapsed_ns: RunSummary::from_values(&rows.column(cell, 4)),
    }
}

/// Print the tables and acceptance checks from rows alone (plus the
/// seeded representative runs behind `--link-stats`), returning
/// whether every check passed. A pure function of the row set, so
/// merged shards render byte-identically to a single process.
fn report(cfg: &Cfg, rows: &SweepRows) -> bool {
    let alg = cfg.alg();
    let seed = cfg.seed;
    let runs = cfg.runs;
    // Keep the default (unsegmented) banner text byte-stable.
    let seg_note = if cfg.segments == [1] {
        String::new()
    } else {
        format!(
            ", segment sweep {{{}}}",
            cfg.segments.iter().map(|k| k.to_string()).collect::<Vec<_>>().join(",")
        )
    };
    let load_note = if cfg.loads == [0.0] {
        String::new()
    } else {
        format!(
            ", offered-load sweep {{{}}}",
            cfg.loads.iter().map(|l| l.to_string()).collect::<Vec<_>>().join(",")
        )
    };
    let route_note = if cfg.ecmp { ", seeded ECMP routing" } else { "" };
    fpna_bench::banner(
        "Table 9 (interconnect)",
        "timing-driven allreduce variability vs cost, by topology depth",
        &format!(
            "{}-element vectors, {runs} runs/config, fanout-{} tree{seg_note}{load_note}{route_note}",
            cfg.len, cfg.fanout,
        ),
    );

    let mut all_checks_pass = true;
    for p in [32usize, 64] {
        let ranks = cfg.ranks(p);

        // Measured span-encoded payload sizes per element: what the
        // reduce (up) phase actually ships. A leaf message carries one
        // value's accumulator; the payload grows toward the root as
        // contributions widen the occupied limb span, so the converged
        // (all-ranks) accumulator is the widest payload any hop sees.
        // Both sit far below the dense WIRE_BYTES upper bound for
        // narrow-dynamic-range data.
        let mean_wire = |per_elem: &dyn Fn(usize) -> ExactAccumulator| -> f64 {
            let total: usize = (0..cfg.len)
                .map(|i| {
                    let mut acc = per_elem(i);
                    acc.normalize();
                    acc.wire_len()
                })
                .sum();
            total as f64 / cfg.len as f64
        };
        let leaf_payload = mean_wire(&|i| {
            let mut a = ExactAccumulator::new();
            a.add(ranks[0][i]);
            a
        });
        let converged_payload = mean_wire(&|i| {
            let mut a = ExactAccumulator::new();
            for r in &ranks {
                a.add(r[i]);
            }
            a
        });
        println!(
            "measured wire payload (span-encoded): leaf {leaf_payload:.1} B/elem, \
             converged {converged_payload:.1} B/elem; dense upper bound {} B/elem",
            ExactAccumulator::WIRE_BYTES
        );
        println!();

        let mut table = Table::new([
            "topology",
            "hops",
            "schedule",
            "seg",
            "jitter",
            "load",
            "differing",
            "mean Vc",
            "mean Vermv",
            "max |Vs[0]|",
            "elapsed µs",
            "overhead",
        ])
        .with_title(format!("p = {p} ranks"));

        // mean Vc per (jitter level, segment count, topology) for the
        // depth-growth check — quiet-fabric rows only, since contention
        // reshapes the depth profile.
        let mut growth: Vec<Vec<Vec<f64>>> =
            vec![vec![Vec::new(); cfg.segments.len()]; JITTER_LEVELS.len()];
        // mean Vc per (jitter level, segment count, load) on the fat
        // tree, in `loads` order, for the variability-vs-offered-load
        // check.
        let mut load_vc: Vec<Vec<Vec<f64>>> =
            vec![vec![Vec::new(); cfg.segments.len()]; JITTER_LEVELS.len()];

        for (ti, topo) in topologies(p).into_iter().enumerate() {
            let hops = topo.diameter_hops();
            for (ki, &segs) in cfg.segments.iter().enumerate() {
                for (li, &load) in cfg.loads.iter().enumerate() {
                    let sched = seed_sweep(rows, &cell_sched(p, ti, segs, li));
                    let plain_elapsed = sched.elapsed_ns.mean;
                    // "zero timing spread" = every run took the identical
                    // simulated time (min == max exactly; the std estimate
                    // itself carries rounding noise).
                    let zero_spread =
                        sched.elapsed_ns.min.to_bits() == sched.elapsed_ns.max.to_bits();
                    if !sched.bitwise_reproducible() || !zero_spread {
                        all_checks_pass = false;
                    }
                    table.push_row([
                        topo.name().to_string(),
                        hops.to_string(),
                        "sw-scheduled".into(),
                        segs.to_string(),
                        "0".into(),
                        format!("{load}"),
                        format!("0/{runs}"),
                        format!("{:.4}", sched.variability.vc.mean),
                        format!("{:.3e}", sched.variability.vermv.mean),
                        "0".into(),
                        mean_std(sched.elapsed_ns.mean / 1e3, sched.elapsed_ns.std_dev / 1e3, 1),
                        "1.00x".into(),
                    ]);

                    for (j, &frac) in JITTER_LEVELS.iter().enumerate() {
                        let cell = cell_arrival(p, ti, segs, li, j);
                        let sweep = seed_sweep(rows, &cell);
                        let vs_max = rows.column(&cell, 5).into_iter().fold(0.0f64, f64::max);
                        if load == 0.0 {
                            growth[j][ki].push(sweep.variability.vc.mean);
                        }
                        if ti == FAT_TREE_IDX {
                            load_vc[j][ki].push(sweep.variability.vc.mean);
                        }
                        table.push_row([
                            topo.name().to_string(),
                            hops.to_string(),
                            "arrival order".into(),
                            segs.to_string(),
                            format!("{frac}"),
                            format!("{load}"),
                            format!(
                                "{}/{runs}",
                                runs - sweep.variability.bitwise_identical_runs
                            ),
                            format!("{:.4}", sweep.variability.vc.mean),
                            format!("{:.3e}", sweep.variability.vermv.mean),
                            format!("{vs_max:.3e}"),
                            mean_std(
                                sweep.elapsed_ns.mean / 1e3,
                                sweep.elapsed_ns.std_dev / 1e3,
                                1,
                            ),
                            format!("{:.2}x", sweep.elapsed_ns.mean / plain_elapsed),
                        ]);
                    }

                    let repro = seed_sweep(rows, &cell_repro(p, ti, segs, li));
                    if !repro.bitwise_reproducible() {
                        all_checks_pass = false;
                    }
                    // Only the reduce (up) phase ships accumulators; the
                    // broadcast carries rounded f64s. So the inflating part is
                    // the up-phase bandwidth term (half the model's symmetric
                    // bandwidth), and everything else (latencies both ways +
                    // down-phase bandwidth) is charged at plain size.
                    let cost = CostModel::from_topology(&topo);
                    let depth = CostModel::tree_depth(p, cfg.fanout) as f64;
                    let (plain_total_ns, up_bandwidth_ns) = if segs == 1 {
                        (
                            cost.tree_allreduce_ns(p, cfg.fanout, (cfg.len * 8) as u64),
                            depth
                                * cfg.fanout as f64
                                * (cfg.len * 8) as f64
                                * cost.beta_ns_per_byte,
                        )
                    } else {
                        let stages = 2.0 * depth + (segs as f64 - 1.0);
                        let total_bw = stages
                            * cfg.fanout as f64
                            * (cfg.len * 8) as f64
                            * cost.beta_ns_per_byte
                            / segs as f64;
                        (
                            cost.segmented_tree_allreduce_ns(
                                p,
                                cfg.fanout,
                                (cfg.len * 8) as u64,
                                segs,
                            ),
                            total_bw / 2.0,
                        )
                    };
                    // Payload-accurate model: price the up phase at the
                    // measured converged span-encoded size (the widest payload
                    // any hop carries) instead of the dense worst case.
                    let modeled = CostModel::reproducible_overhead(
                        plain_total_ns - up_bandwidth_ns,
                        up_bandwidth_ns,
                        converged_payload.ceil() as usize,
                    );
                    table.push_row([
                        topo.name().to_string(),
                        hops.to_string(),
                        "reproducible".into(),
                        segs.to_string(),
                        format!("{}", NetConfig::default().jitter_frac),
                        format!("{load}"),
                        format!("0/{runs}"),
                        format!("{:.4}", repro.variability.vc.mean),
                        format!("{:.3e}", repro.variability.vermv.mean),
                        "0".into(),
                        mean_std(repro.elapsed_ns.mean / 1e3, repro.elapsed_ns.std_dev / 1e3, 1),
                        format!(
                            "{:.2}x (model {modeled:.2}x)",
                            repro.elapsed_ns.mean / plain_elapsed
                        ),
                    ]);
                }
            }
        }

        println!("{}", table.render());

        // --link-stats: per-link queueing view of one representative
        // contended run per topology (highest offered load, jitter
        // 0.1, arrival order) — which links actually back up.
        if cfg.link_stats {
            let load = *cfg.loads.last().unwrap();
            for topo in topologies(p) {
                let net_cfg = NetConfig {
                    jitter_frac: 0.1,
                    ..NetConfig::default()
                }
                .with_load(load, derive_seed(seed, 0x10AD))
                .with_route(cfg.route_for(seed))
                .with_link_stats(true);
                let out = allreduce_on(
                    &topo,
                    &ranks,
                    alg,
                    Ordering::ArrivalOrder { seed: derive_seed(seed, 1) },
                    &net_cfg,
                );
                let stats = out
                    .link_stats
                    .expect("with_link_stats(true) collects per-link stats");
                let mut busiest: Vec<(usize, &fpna_net::LinkStats)> =
                    stats.iter().enumerate().filter(|(_, s)| s.messages > 0).collect();
                busiest.sort_by(|(la, a), (lb, b)| {
                    b.wait_ns
                        .partial_cmp(&a.wait_ns)
                        .unwrap()
                        .then_with(|| b.messages.cmp(&a.messages))
                        .then_with(|| la.cmp(lb))
                });
                let active = busiest.len();
                busiest.truncate(10);
                let mut lt = Table::new(["link", "messages", "wait µs", "max depth"]).with_title(
                    format!(
                        "{} — busiest links (load {load}, jitter 0.1, {active}/{} links active)",
                        topo.name(),
                        topo.num_links(),
                    ),
                );
                for (l, s) in busiest {
                    lt.push_row([
                        format!("L{l} {}", topo.link_label(l)),
                        s.messages.to_string(),
                        format!("{:.1}", s.wait_ns / 1e3),
                        s.max_depth.to_string(),
                    ]);
                }
                println!("{}", lt.render());
            }
        }

        // --place aware: A/B the oblivious tree against hierarchical
        // placement per topology × load — modeled cost from the
        // per-leg α–β extractors, measured medians and NIC-crossing
        // bytes from the sweep rows. On fabrics with real group
        // structure (fat tree, hierarchy) aware placement must beat
        // the oblivious tree on both the model and the NIC bytes.
        if cfg.aware {
            let bytes = (cfg.len * 8) as u64;
            let mut pt = Table::new([
                "topology",
                "load",
                "placement",
                "modeled µs",
                "median µs",
                "NIC KB",
                "mean Vc",
            ])
            .with_title(format!("p = {p} ranks — placement A/B (jitter {})", JITTER_LEVELS[0]));
            let mut check_lines: Vec<String> = Vec::new();
            for (ti, topo) in topologies(p).into_iter().enumerate() {
                let cost = CostModel::from_topology(&topo);
                let intra = CostModel::intra_group(&topo);
                let inter = CostModel::inter_group(&topo);
                let groups = topo.num_groups();
                let group_size =
                    (0..groups).map(|g| topo.group_ranks(g).len()).max().unwrap_or(1);
                let modeled = [
                    cost.tree_allreduce_ns(p, cfg.fanout, bytes),
                    CostModel::hierarchical_allreduce_ns(
                        intra, inter, groups, group_size, cfg.fanout, cfg.fanout, bytes,
                    ),
                ];
                for (li, &load) in cfg.loads.iter().enumerate() {
                    let mut measured = [(0.0f64, 0.0f64, 0.0f64); 2];
                    for (pi, pl) in ["obl", "awr"].iter().enumerate() {
                        let cell = cell_place(p, ti, li, pl);
                        let med = median(rows.column(&cell, 1));
                        let nic = RunSummary::from_values(&rows.column(&cell, 2)).mean;
                        let vc = RunSummary::from_values(&rows.column(&cell, 0)).mean;
                        measured[pi] = (med, nic, vc);
                        pt.push_row([
                            topo.name().to_string(),
                            format!("{load}"),
                            if pi == 0 { "oblivious tree" } else { "aware hier" }.into(),
                            format!("{:.1}", modeled[pi] / 1e3),
                            format!("{:.1}", med / 1e3),
                            format!("{:.1}", nic / 1e3),
                            format!("{:.4}", vc),
                        ]);
                    }
                    let grouped = groups > 1;
                    let model_ok = !grouped || modeled[1] < modeled[0];
                    let nic_ok = !grouped || measured[1].1 < measured[0].1;
                    if !model_ok || !nic_ok {
                        all_checks_pass = false;
                    }
                    check_lines.push(format!(
                        "placement check ({}, load {load}): model {:.1} -> {:.1} µs, \
                         NIC {:.1} -> {:.1} KB, dVc {:+.4} -> {}",
                        topo.name(),
                        modeled[0] / 1e3,
                        modeled[1] / 1e3,
                        measured[0].1 / 1e3,
                        measured[1].1 / 1e3,
                        measured[1].2 - measured[0].2,
                        if !grouped {
                            "SKIP (single fabric group)"
                        } else if model_ok && nic_ok {
                            "PASS"
                        } else {
                            "FAIL"
                        }
                    ));
                }
                check_lines.push(format!(
                    "aware extras ({}, modeled): double binary tree {:.1} µs, fabric ring {:.1} µs",
                    topo.name(),
                    cost.double_binary_tree_allreduce_ns(p, bytes) / 1e3,
                    CostModel::fabric_ring_allreduce_ns(intra, inter, p, groups, bytes) / 1e3,
                ));
            }
            println!("{}", pt.render());
            for line in check_lines {
                println!("{line}");
            }
            println!();
        }

        // Accumulated path jitter grows strictly with fabric depth, so
        // at every jitter level mean Vc must be monotone in hop count
        // and nonzero on the deepest fabric (shallow fabrics may stay
        // at exactly zero below their reorder threshold — that *is*
        // the depth transition).
        for (j, &frac) in JITTER_LEVELS.iter().enumerate() {
            for (ki, &segs) in cfg.segments.iter().enumerate() {
                let seg_note = if cfg.segments == [1] {
                    String::new()
                } else {
                    format!(", segments {segs}")
                };
                // Depth growth is a quiet-fabric property; it is only
                // collected (and checked) when 0 is among the loads.
                let vcs = &growth[j][ki];
                if !vcs.is_empty() {
                    let monotone = vcs.windows(2).all(|w| w[0] <= w[1] + 1e-12);
                    let nonzero_deep = *vcs.last().unwrap() > 0.0;
                    if !monotone || !nonzero_deep {
                        all_checks_pass = false;
                    }
                    println!(
                        "growth check (jitter {frac}{seg_note}): mean Vc by depth = {} -> {}",
                        vcs.iter()
                            .map(|v| format!("{v:.4}"))
                            .collect::<Vec<_>>()
                            .join(" <= "),
                        if monotone && nonzero_deep { "PASS" } else { "FAIL" }
                    );
                }
                // Contention is a *second* nondeterminism source: on the
                // fat tree, arrival-order variability must strictly grow
                // with offered load.
                if cfg.loads.len() > 1 {
                    let vcs = &load_vc[j][ki];
                    let strictly_growing = vcs.windows(2).all(|w| w[1] > w[0]);
                    if !strictly_growing {
                        all_checks_pass = false;
                    }
                    println!(
                        "load check (jitter {frac}{seg_note}): fat-tree mean Vc by offered load = {} -> {}",
                        vcs.iter()
                            .map(|v| format!("{v:.4}"))
                            .collect::<Vec<_>>()
                            .join(" < "),
                        if strictly_growing { "PASS" } else { "FAIL" }
                    );
                }
            }
        }
        println!();
    }

    println!(
        "summary: software-scheduled runs bit-identical with zero timing spread; \
         arrival-order variability grows with fabric depth; reproducible mode \
         bit-identical across every topology and jitter seed at a bandwidth-\n\
         dominated overhead (span-encoded accumulators on the wire vs 8B plain; \
         dense upper bound {}B/element).",
        ExactAccumulator::WIRE_BYTES
    );
    all_checks_pass
}

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let executor = args.executor();
    let len = fpna_bench::arg_usize("len", 4_096);
    let runs = args.size("runs", 25, 500);
    let fanout = fpna_bench::arg_usize("fanout", 4);
    let seed = fpna_bench::arg_u64("seed", 9);
    let segments: Vec<usize> = fpna_bench::arg_string("segments")
        .map(|v| {
            v.split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--segments expects integers, got {s}"))
                })
                .collect()
        })
        .unwrap_or_else(|| vec![1]);
    assert!(
        !segments.is_empty() && segments.iter().all(|&k| k >= 1),
        "--segments expects a comma-separated list of positive chunk counts"
    );
    let loads: Vec<f64> = fpna_bench::arg_string("load")
        .map(|v| {
            v.split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--load expects offered-load factors, got {s}"))
                })
                .collect()
        })
        .unwrap_or_else(|| vec![0.0]);
    assert!(
        !loads.is_empty() && loads.iter().all(|&l| l.is_finite() && l >= 0.0),
        "--load expects a comma-separated list of non-negative offered-load factors"
    );
    assert!(
        loads.windows(2).all(|w| w[0] < w[1]),
        "--load expects strictly increasing offered-load factors"
    );
    let link_stats = fpna_bench::arg_flag("link-stats");
    let ecmp = match fpna_bench::arg_string("route").as_deref() {
        None | Some("fixed") => false,
        Some("ecmp") => true,
        Some(other) => panic!("--route expects fixed|ecmp, got {other}"),
    };
    let aware = match fpna_bench::arg_string("place").as_deref() {
        None | Some("oblivious") => false,
        Some("aware") => true,
        Some(other) => panic!("--place expects oblivious|aware, got {other}"),
    };
    assert!(
        !aware || segments == [1],
        "--place aware does not combine with --segments (placement A/B runs unsegmented)"
    );
    let cfg = Cfg { len, runs, fanout, seed, segments, loads, link_stats, ecmp, aware };

    let mut spec = SweepSpec::new("table9", runs)
        .arg("len", cfg.len)
        .arg("fanout", cfg.fanout)
        .arg("seed", cfg.seed)
        .arg(
            "segments",
            cfg.segments.iter().map(|k| k.to_string()).collect::<Vec<_>>().join(","),
        )
        .arg(
            "load",
            cfg.loads.iter().map(|l| l.to_string()).collect::<Vec<_>>().join(","),
        )
        .arg("route", if cfg.ecmp { "ecmp" } else { "fixed" })
        .arg("place", if cfg.aware { "aware" } else { "oblivious" });
    if cfg.link_stats {
        spec = spec.flag("link-stats");
    }
    if args.sweep.emit_spec(&spec) {
        return;
    }
    let rows = match args.sweep.compute_range(spec.runs) {
        Some(range) => compute(&cfg, range, &executor),
        None => args.sweep.load_rows_or_exit(&spec),
    };
    if args.sweep.finish_shard_or_exit(&spec, &rows) {
        args.finish();
        return;
    }
    let all_checks_pass = report(&cfg, &rows);
    args.finish();
    if all_checks_pass {
        println!("all acceptance checks PASS");
    } else {
        println!("SOME ACCEPTANCE CHECKS FAILED");
        std::process::exit(1);
    }
}
