//! Table 1: effects of random permutations on serial sums of FP64
//! numbers drawn from N(0, 1).
//!
//! `cargo run --release -p fpna-bench --bin table1 [--seed S] [--threads N]`

use fpna_core::report::{sci, Table};
use fpna_stats::samplers::{Distribution, Sampler};
use fpna_summation::serial::{randomly_permuted_sum, serial_sum};

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let seed = fpna_bench::arg_u64("seed", 2024);
    fpna_bench::banner(
        "Table 1",
        "effects of permutations on sums of floating-point numbers",
        "",
    );
    let mut table = Table::new(["size", "Snd - Sd", "Vs"]);
    // The paper lists two permutations per size from 1e3 upward.
    let sizes = [
        100usize, 1_000, 1_000, 10_000, 10_000, 100_000, 100_000, 1_000_000, 1_000_000,
    ];
    // Each row is independent (sampling and permutation are keyed by
    // the row), so rows fan out across the executor's workers.
    let rows = args.executor().map_runs(sizes.len(), |row| {
        let n = sizes[row];
        let mut sampler = Sampler::new(
            Distribution::standard_normal(),
            seed ^ (n as u64).rotate_left(17),
        );
        let xs = sampler.sample_vec(n);
        let sd = serial_sum(&xs);
        let snd = randomly_permuted_sum(&xs, seed.wrapping_add(row as u64));
        let vs = fpna_core::metrics::scalar_variability(snd, sd);
        [n.to_string(), sci(snd - sd), sci(vs)]
    });
    for row in rows {
        table.push_row(row);
    }
    println!("{}", table.render());
    args.finish();
}
