//! Fig 2: PDF of the scalar variability `Vs` when the `atomicAdd`-only
//! kernel (AO) is the non-deterministic implementation, on V100 with
//! U(0, 10) inputs. The paper's headline: unlike SPA, this
//! distribution is *not* normal — the Gaussian-noise assumption for
//! FPNA is invalid in general.
//!
//! Paper scale: 500 000 sums. Default: 300 runs on one array
//! (`--runs`, `--arrays`).
//!
//! `cargo run --release -p fpna-bench --bin fig2 [--runs 300] [--arrays 4] [--bins 41]
//!  [--threads N] [--paper-scale]`

use fpna_gpu_sim::{GpuDevice, GpuModel, KernelParams, ReduceKernel, ScheduleKind};
use fpna_stats::histogram::Histogram;
use fpna_stats::kl::kl_vs_fitted_normal;
use fpna_stats::normality::jarque_bera;
use fpna_stats::samplers::{Distribution, Sampler};

const N: usize = 1_000_000;

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let arrays = fpna_bench::arg_usize("arrays", 4);
    let runs = args.size("runs", 300, 125_000);
    let bins = fpna_bench::arg_usize("bins", 41);
    let seed = fpna_bench::arg_u64("seed", 20);
    fpna_bench::banner(
        "Fig 2",
        "PDF of Vs for the AO kernel, 1M FP64 ~ U(0,10), V100",
        &format!("{arrays} arrays x {runs} runs (paper: 500000 sums)"),
    );
    let device = GpuDevice::new(GpuModel::V100);
    let params = KernelParams::fig1();
    let executor = args.executor();
    let mut vs_samples = Vec::with_capacity(arrays * runs);
    for a in 0..arrays {
        let mut sampler = Sampler::new(Distribution::paper_uniform(), seed ^ ((a as u64) << 24));
        let xs = sampler.sample_vec(N);
        let det = device
            .reduce(ReduceKernel::Sptr, &xs, params, &ScheduleKind::InOrder)
            .unwrap()
            .value;
        let outcomes = device
            .reduce_runs(
                ReduceKernel::Ao,
                &xs,
                params,
                &ScheduleKind::Seeded(seed ^ (a as u64)),
                runs,
                &executor,
            )
            .unwrap();
        vs_samples.extend(
            outcomes
                .iter()
                .map(|out| fpna_core::metrics::scalar_variability(out.value, det)),
        );
    }
    let scaled: Vec<f64> = vs_samples.iter().map(|v| v * 1e16).collect();
    let h = Histogram::from_data(&scaled, bins);
    println!("Vs x 1e16        density");
    for (center, density) in h.density_series() {
        let bar = "#".repeat((density * 1200.0).min(60.0) as usize);
        println!("{center:>10.1}  {density:>10.6}  {bar}");
    }
    let (kl, mean, std) = kl_vs_fitted_normal(&scaled, bins);
    let jb = jarque_bera(&scaled);
    println!("fitted normal: mean = {mean:.3}e-16, std = {std:.3}e-16");
    println!("KL(empirical || fitted normal) = {kl:.5}");
    println!(
        "Jarque-Bera: stat = {:.2}, p = {:.4}, skew = {:.3}, ex.kurtosis = {:.3}",
        jb.statistic, jb.p_value, jb.skewness, jb.excess_kurtosis
    );
    args.finish();
}
