//! Table 8: GraphSAGE inference runtime — deterministic and
//! non-deterministic on the simulated H100, and on the LPU (a compiled
//! static program whose runtime is a constant).
//!
//! Also prints the §V-B training runtimes (the paper: 0.48 s
//! deterministic vs 0.18 s non-deterministic for 10 epochs) as
//! measured wall time of the simulation-backed pipeline.
//!
//! `cargo run --release -p fpna-bench --bin table8 [--epochs 10]`

use fpna_core::report::Table;
use fpna_gpu_sim::profile::{DeviceProfile, GpuModel};
use fpna_nn::cost::{gpu_inference_time_ms, lpu_inference};
use fpna_nn::graph::{synthetic_cora, CoraParams};
use fpna_nn::model::{train_model, TrainConfig};
use fpna_nn::sage::Aggregation;
use fpna_tensor::context::GpuContext;

fn main() {
    // The run loop here is a two-sided wall-clock measurement (D vs ND
    // training), which is inherently sequential; parsed for the
    // uniform `--threads`/`--paper-scale` flag surface.
    let args = fpna_bench::ExperimentArgs::parse();
    let epochs = fpna_bench::arg_usize("epochs", 10);
    let seed = fpna_bench::arg_u64("seed", 88);
    fpna_bench::banner(
        "Table 8",
        "GraphSAGE inference runtime, H100 vs LPU",
        "H100 from the calibrated framework cost model; LPU from the compiled program",
    );
    let ds = synthetic_cora(CoraParams::cora(), seed);
    let cfg = TrainConfig {
        hidden: 16,
        lr: 0.5,
        epochs,
        init_seed: seed ^ 0x8888,
        aggregation: Aggregation::Mean,
    };
    let h100 = DeviceProfile::new(GpuModel::H100);

    // Train once (deterministically) to have a model for the LPU run.
    let ctx = GpuContext::new(GpuModel::H100, seed).with_determinism(Some(true));
    let t0 = std::time::Instant::now();
    let (model, losses) = train_model(&ds, &cfg, &ctx).unwrap();
    let det_train_s = t0.elapsed().as_secs_f64();
    let nd_ctx = GpuContext::new(GpuModel::H100, seed ^ 1).with_determinism(Some(false));
    let t0 = std::time::Instant::now();
    let _ = train_model(&ds, &cfg, &nd_ctx).unwrap();
    let nd_train_s = t0.elapsed().as_secs_f64();

    let (_probs, lpu_us) = lpu_inference(&ds, &model).unwrap();

    let mut table = Table::new(["Inference", "H100 (ms)", "Groq (ms)"]);
    table.push_row([
        "Deterministic".to_string(),
        format!("{:.2}", gpu_inference_time_ms(&h100, &ds, cfg.hidden, true)),
        format!("{:.3}", lpu_us / 1e3),
    ]);
    table.push_row([
        "Non Deterministic".to_string(),
        format!("{:.2}", gpu_inference_time_ms(&h100, &ds, cfg.hidden, false)),
        "N/A".to_string(),
    ]);
    println!("{}", table.render());
    println!();
    println!(
        "training wall time ({} epochs, host simulation): D = {:.2} s, ND = {:.2} s",
        epochs, det_train_s, nd_train_s
    );
    println!(
        "final training loss = {:.4} (losses decrease: {})",
        losses.last().unwrap(),
        losses.last().unwrap() < &losses[0]
    );
    args.finish();
}
