//! Accuracy/variability ablations for the design choices DESIGN.md
//! calls out (the timing ablations live in `benches/ablations.rs`):
//!
//! 1. **Scheduler model** — does the `Vs` distribution of SPA change
//!    between the wave-biased scheduler and a uniform random
//!    permutation? (It barely does: the variability comes from the
//!    permutation of partials, not from residency structure.)
//! 2. **Pairwise leaf size** — accuracy of the pairwise sum vs leaf.
//! 3. **Exact accumulator vs compensated sums** — error on
//!    ill-conditioned data.
//! 4. **SAGE aggregation (mean vs sum)** — effect on ND-training
//!    weight divergence.
//!
//! `cargo run --release -p fpna-bench --bin ablations [--runs 200] [--threads N] [--paper-scale]`

use fpna_core::metrics::scalar_variability;
use fpna_gpu_sim::{GpuDevice, GpuModel, KernelParams, ReduceKernel, ScheduleKind};
use fpna_nn::graph::{synthetic_cora, CoraParams};
use fpna_nn::model::TrainConfig;
use fpna_nn::sage::Aggregation;
use fpna_nn::train::weight_divergence_experiment;
use fpna_stats::describe::Describe;
use fpna_stats::samplers::{Distribution, Sampler};
use fpna_summation::exact::exact_sum;
use fpna_summation::{kahan_sum, neumaier_sum, pairwise_sum_with_leaf, serial_sum};

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let executor = args.executor();
    let runs = args.size("runs", 200, 2_000);
    let seed = fpna_bench::arg_u64("seed", 123);

    fpna_bench::banner("Ablation 1", "scheduler model: wave-biased vs uniform random", "");
    let device = GpuDevice::new(GpuModel::V100);
    let params = KernelParams::new(64, 7813);
    let mut sampler = Sampler::new(Distribution::paper_uniform(), seed);
    let xs = sampler.sample_vec(1_000_000);
    let det = device
        .reduce(ReduceKernel::Sptr, &xs, params, &ScheduleKind::InOrder)
        .unwrap()
        .value;
    for (label, base) in [
        ("wave-biased", ScheduleKind::Seeded(seed)),
        ("uniform    ", ScheduleKind::UniformRandom(seed)),
    ] {
        let vs: Vec<f64> = device
            .reduce_runs(ReduceKernel::Spa, &xs, params, &base, runs, &executor)
            .unwrap()
            .iter()
            .map(|out| scalar_variability(out.value, det) * 1e16)
            .collect();
        let d = Describe::of(&vs);
        println!(
            "{label}: mean = {:+.3}e-16, std = {:.3}e-16, skew = {:+.3}, ex.kurt = {:+.3}",
            d.mean, d.std_dev, d.skewness, d.excess_kurtosis
        );
    }
    println!();

    fpna_bench::banner("Ablation 2", "pairwise leaf size vs accuracy (1M summands)", "");
    let exact = exact_sum(&xs);
    for leaf in [1usize, 8, 32, 128, 512, 4096, 1_000_000] {
        let v = pairwise_sum_with_leaf(&xs, leaf);
        println!(
            "leaf {leaf:>8}: |err| = {:.3e}  (serial err = {:.3e})",
            (v - exact).abs(),
            (serial_sum(&xs) - exact).abs()
        );
    }
    println!();

    fpna_bench::banner(
        "Ablation 3",
        "exact accumulator vs compensated sums on ill-conditioned data",
        "",
    );
    let mut rng = fpna_core::rng::SplitMix64::new(seed);
    let mut hard = Vec::with_capacity(100_000);
    for _ in 0..50_000 {
        let big = (rng.next_f64() - 0.5) * 1e15;
        hard.push(big);
        hard.push(-big + (rng.next_f64() - 0.5) * 1e-3);
    }
    let reference = exact_sum(&hard);
    for (name, v) in [
        ("serial  ", serial_sum(&hard)),
        ("kahan   ", kahan_sum(&hard)),
        ("neumaier", neumaier_sum(&hard)),
        ("exact   ", reference),
    ] {
        println!("{name}: rel err = {:.3e}", (v - reference).abs() / reference.abs());
    }
    println!();

    fpna_bench::banner(
        "Ablation 4",
        "SAGE aggregation mean vs sum: ND weight divergence after 5 epochs",
        "scaled-down Cora for runtime",
    );
    let mut p = CoraParams::cora();
    p.nodes = 600;
    p.features = 200;
    p.links = 1_500;
    let ds = synthetic_cora(p, seed);
    for agg in [Aggregation::Mean, Aggregation::Sum] {
        let cfg = TrainConfig {
            hidden: 16,
            lr: if agg == Aggregation::Sum { 0.05 } else { 0.5 },
            epochs: 5,
            init_seed: seed,
            aggregation: agg,
        };
        let wd =
            weight_divergence_experiment(&ds, &cfg, GpuModel::H100, 3, seed, &executor).unwrap();
        let last = wd.per_epoch_vermv.last().unwrap();
        println!(
            "{agg:?}: final weight Vermv mean = {:.3e}, Vc = {:.3}, unique = {}/{}",
            last.mean, wd.final_vc.mean, wd.unique_models, wd.runs
        );
    }
    args.finish();
}
