//! Table 3: normal (unordered) vs ordered multithreaded reductions on
//! the CPU — the OpenMP experiment. The unordered column exhibits
//! genuine run-to-run variability from the OS scheduler; the ordered
//! column is bitwise constant.
//!
//! `cargo run --release -p fpna-bench --bin table3 [--trials 10] [--n 1000000] [--threads 8]`
//!
//! Note: `--threads` here is the *experiment variable* — the number of
//! OS threads inside each reduction, whose scheduling produces the
//! genuine run-to-run variability this table demonstrates. The trial
//! loop itself stays serial on purpose: unlike every other binary,
//! this experiment's output is *not* expected to be reproducible
//! across invocations (that is its point).

use fpna_core::report::Table;
use fpna_stats::samplers::{Distribution, Sampler};
use fpna_summation::parallel::{ordered_threaded_sum, unordered_threaded_sum};

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let trials = fpna_bench::arg_usize("trials", 10);
    let n = fpna_bench::arg_usize("n", 1_000_000);
    let threads = fpna_bench::arg_usize("threads", 8);
    fpna_bench::banner(
        "Table 3",
        "normal and ordered reductions (OpenMP analogue) on CPU",
        &format!("{n} summands, {threads} threads — real OS-thread nondeterminism"),
    );
    // Magnitudes chosen so the total lands near the paper's ~2.4e-7,
    // making the varying last digits easy to compare by eye.
    let mut sampler = Sampler::new(
        Distribution::Uniform {
            lo: 0.0,
            hi: 4.7e-13,
        },
        99,
    );
    let xs = sampler.sample_vec(n);
    let mut table = Table::new(["Trial", "Normal Reduction", "Ordered Reduction"]);
    let mut normal_bits = std::collections::HashSet::new();
    let mut ordered_bits = std::collections::HashSet::new();
    for trial in 1..=trials {
        let normal = unordered_threaded_sum(&xs, threads);
        let ordered = ordered_threaded_sum(&xs, threads);
        normal_bits.insert(normal.to_bits());
        ordered_bits.insert(ordered.to_bits());
        table.push_row([
            trial.to_string(),
            format!("{normal:.16e}"),
            format!("{ordered:.16e}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "distinct bit patterns over {trials} trials: normal = {}, ordered = {}",
        normal_bits.len(),
        ordered_bits.len()
    );
    args.finish();
}
