//! Distributed allreduce variability — the paper's concluding
//! future-work item, made concrete: per-algorithm and per-ordering
//! run-to-run variability of a 64-rank allreduce, plus the
//! cross-algorithm inconsistency that runtime algorithm selection
//! introduces, and the exact (reproducible) fix.
//!
//! `cargo run --release -p fpna-bench --bin fig_allreduce [--ranks 64] [--len 4096] [--runs 50]
//!  [--threads N] [--paper-scale]`

use fpna_collectives::{allreduce, Algorithm, Ordering};
use fpna_core::metrics::ArrayComparison;
use fpna_core::report::Table;
use fpna_core::rng::SplitMix64;

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let p = fpna_bench::arg_usize("ranks", 64);
    let len = fpna_bench::arg_usize("len", 4_096);
    let runs = args.size("runs", 50, 1_000);
    let seed = fpna_bench::arg_u64("seed", 12);
    fpna_bench::banner(
        "Fig (allreduce)",
        "run-to-run variability of distributed reductions",
        &format!("{p} ranks, {len}-element vectors, {runs} runs"),
    );
    let mut rng = SplitMix64::new(seed);
    let ranks: Vec<Vec<f64>> = (0..p)
        .map(|_| (0..len).map(|_| rng.next_f64() * 1e8 - 5e7).collect())
        .collect();

    let mut table = Table::new(["algorithm", "ordering", "runs differing", "mean Vc", "mean Vermv"]);
    let cases: Vec<(Algorithm, Ordering, &str, &str)> = vec![
        (Algorithm::KAryTree { fanout: 8 }, Ordering::ArrivalOrder { seed }, "8-ary tree", "arrival order"),
        (Algorithm::KAryTree { fanout: 2 }, Ordering::ArrivalOrder { seed }, "binary tree", "arrival order"),
        (Algorithm::KAryTree { fanout: 8 }, Ordering::RankOrder, "8-ary tree", "rank order (sw-scheduled)"),
        (Algorithm::Ring, Ordering::RankOrder, "ring", "fixed rotation"),
        (Algorithm::RecursiveDoubling, Ordering::RankOrder, "recursive doubling", "pairwise"),
        (Algorithm::KAryTree { fanout: 8 }, Ordering::Reproducible, "8-ary tree", "reproducible (exact)"),
    ];
    for (alg, ord, alg_name, ord_name) in cases {
        let reference = allreduce(&ranks, alg, rekey(ord, 0));
        let comparisons = args.executor().map_runs(runs, |run| {
            let out = allreduce(&ranks, alg, rekey(ord, run as u64 + 1));
            ArrayComparison::compare(&reference, &out)
        });
        let differing = comparisons.iter().filter(|c| !c.bitwise_identical()).count();
        let vc_sum: f64 = comparisons.iter().map(|c| c.vc).sum();
        let vermv_sum: f64 = comparisons.iter().map(|c| c.vermv).sum();
        table.push_row([
            alg_name.to_string(),
            ord_name.to_string(),
            format!("{differing}/{runs}"),
            format!("{:.4}", vc_sum / runs as f64),
            format!("{:.3e}", vermv_sum / runs as f64),
        ]);
    }
    println!("{}", table.render());

    // Cross-algorithm inconsistency: each deterministic, mutually different.
    let ring = allreduce(&ranks, Algorithm::Ring, Ordering::RankOrder);
    let tree = allreduce(&ranks, Algorithm::KAryTree { fanout: 2 }, Ordering::RankOrder);
    let rd = allreduce(&ranks, Algorithm::RecursiveDoubling, Ordering::RankOrder);
    let cmp_rt = ArrayComparison::compare(&ring, &tree);
    let cmp_rr = ArrayComparison::compare(&ring, &rd);
    println!();
    println!(
        "cross-algorithm Vc (each algorithm deterministic, mutually inconsistent):\n\
         \u{2022} ring vs binary tree        : {:.4}\n\
         \u{2022} ring vs recursive doubling : {:.4}",
        cmp_rt.vc, cmp_rr.vc
    );
    let exact_a = allreduce(&ranks, Algorithm::Ring, Ordering::Reproducible);
    let exact_b = allreduce(&ranks, Algorithm::KAryTree { fanout: 5 }, Ordering::Reproducible);
    let cmp = ArrayComparison::compare(&exact_a, &exact_b);
    println!(
        "reproducible mode across different algorithms: bitwise identical = {}",
        cmp.bitwise_identical()
    );
    args.finish();
}

fn rekey(ord: Ordering, run: u64) -> Ordering {
    match ord {
        Ordering::ArrivalOrder { seed } => Ordering::ArrivalOrder {
            seed: fpna_core::rng::derive_seed(seed, run),
        },
        other => other,
    }
}
