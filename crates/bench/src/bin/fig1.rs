//! Fig 1: probability density of the scalar variability `Vs` for SPA
//! (non-deterministic) sums of 1M FP64 numbers, for N(0, 1) and
//! U(0, 10) inputs, with SPTR as the deterministic reference. Also
//! prints the §III-C Kullback–Leibler normality criterion and a
//! Jarque–Bera test.
//!
//! Paper scale: 100 arrays × 10 000 SPA runs. Default here: 20 arrays
//! × 200 runs (override with `--arrays` / `--runs`).
//!
//! `cargo run --release -p fpna-bench --bin fig1 [--arrays 20] [--runs 200] [--bins 41]
//!  [--threads N] [--paper-scale]`
//!
//! Speaks the sweep protocol (`--emit-spec` / `--shard-id …` /
//! `--from-shards …`, see `fpna-sweep`): runs are seeded by global run
//! index, so any process sharding merges to byte-identical output.

use fpna_gpu_sim::{GpuDevice, GpuModel, KernelParams, ReduceKernel, ScheduleKind};
use fpna_stats::histogram::Histogram;
use fpna_stats::kl::kl_vs_fitted_normal;
use fpna_stats::normality::jarque_bera;
use fpna_stats::samplers::{Distribution, Sampler};
use fpna_sweep::{SweepRows, SweepSpec};

const N: usize = 1_000_000;

const DISTS: [fn() -> Distribution; 2] = [
    Distribution::standard_normal,
    Distribution::paper_uniform,
];

fn cell(di: usize, a: usize) -> String {
    format!("d{di}/a{a}")
}

/// Per-run `Vs` for every (distribution, array) cell, global runs in
/// `range` only. References (the input arrays and their deterministic
/// SPTR sums) are pure functions of the spec, recomputed per process —
/// cheap next to the run sweep they anchor.
fn compute(
    range: std::ops::Range<usize>,
    arrays: usize,
    seed: u64,
    executor: &fpna_core::executor::RunExecutor,
) -> SweepRows {
    let device = GpuDevice::new(GpuModel::V100);
    let params = KernelParams::fig1();
    let mut rows = SweepRows::new();
    for (di, dist) in DISTS.iter().enumerate() {
        for a in 0..arrays {
            let mut sampler = Sampler::new(dist(), seed ^ ((a as u64) << 20));
            let xs = sampler.sample_vec(N);
            let det = device
                .reduce(ReduceKernel::Sptr, &xs, params, &ScheduleKind::InOrder)
                .unwrap()
                .value;
            let outcomes = device
                .reduce_runs_range(
                    ReduceKernel::Spa,
                    &xs,
                    params,
                    &ScheduleKind::Seeded(seed ^ (a as u64)),
                    range.clone(),
                    executor,
                )
                .unwrap();
            for (i, out) in outcomes.iter().enumerate() {
                rows.push(
                    &cell(di, a),
                    range.start + i,
                    vec![fpna_core::metrics::scalar_variability(out.value, det)],
                );
            }
        }
    }
    rows
}

/// Print the figure from rows alone — a pure function of the row set,
/// so merged shards render byte-identically to a single process.
fn report(rows: &SweepRows, arrays: usize, runs: usize, bins: usize) {
    fpna_bench::banner(
        "Fig 1",
        "PDF of Vs for SPA sums of 1M FP64 on V100 (Nt=64, Nb=7813)",
        &format!("{arrays} arrays x {runs} runs (paper: 100 x 10000)"),
    );
    for (di, dist) in DISTS.iter().enumerate() {
        let mut vs_samples = Vec::with_capacity(arrays * runs);
        for a in 0..arrays {
            vs_samples.extend(rows.column(&cell(di, a), 0));
        }
        let scaled: Vec<f64> = vs_samples.iter().map(|v| v * 1e16).collect();
        let h = Histogram::from_data(&scaled, bins);
        println!("--- xi ~ {} ---", dist().label());
        println!("Vs x 1e16        density");
        for (center, density) in h.density_series() {
            let bar = "#".repeat((density * 400.0).min(60.0) as usize);
            println!("{center:>10.1}  {density:>10.6}  {bar}");
        }
        let (kl, mean, std) = kl_vs_fitted_normal(&scaled, bins);
        let jb = jarque_bera(&scaled);
        println!(
            "fitted normal: mean = {mean:.3}e-16, std = {std:.3}e-16; \
             KL(empirical || normal) = {kl:.5}"
        );
        println!(
            "Jarque-Bera: stat = {:.2}, p = {:.4}, skew = {:+.3}, ex.kurtosis = {:+.3}",
            jb.statistic, jb.p_value, jb.skewness, jb.excess_kurtosis
        );
        println!(
            "(the paper's criterion is comparative: SPA's KL is small and shrinks \
             with sample size, while AO's — see fig2 — stays large)"
        );
        println!();
    }
}

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let arrays = args.size("arrays", 20, 100);
    let runs = args.size("runs", 200, 10_000);
    let bins = fpna_bench::arg_usize("bins", 41);
    let seed = fpna_bench::arg_u64("seed", 10);

    let spec = SweepSpec::new("fig1", runs)
        .arg("arrays", arrays)
        .arg("bins", bins)
        .arg("seed", seed);
    if args.sweep.emit_spec(&spec) {
        return;
    }
    let rows = match args.sweep.compute_range(spec.runs) {
        Some(range) => compute(range, arrays, seed, &args.executor()),
        None => args.sweep.load_rows_or_exit(&spec),
    };
    if args.sweep.finish_shard_or_exit(&spec, &rows) {
        args.finish();
        return;
    }
    report(&rows, arrays, runs, bins);
    args.finish();
}
