//! Table 7: `Vermv` and `Vc` of GraphSAGE predictions for the four
//! deterministic/non-deterministic training × inference combinations,
//! on the synthetic Cora.
//!
//! Paper scale: 1000 models per condition. Default: 6 (`--models`).
//!
//! `cargo run --release -p fpna-bench --bin table7 [--models 6] [--epochs 10]
//!  [--threads N] [--paper-scale]`

use fpna_core::report::{mean_std, Table};
use fpna_gpu_sim::GpuModel;
use fpna_nn::graph::{synthetic_cora, CoraParams};
use fpna_nn::model::TrainConfig;
use fpna_nn::sage::Aggregation;
use fpna_nn::train::train_inference_matrix;

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let models = args.size("models", 6, 1_000);
    let epochs = fpna_bench::arg_usize("epochs", 10);
    let seed = fpna_bench::arg_u64("seed", 77);
    fpna_bench::banner(
        "Table 7",
        "Vermv and Vc for D/ND training x inference combinations",
        &format!(
            "{models} models per condition (paper: 1000), {epochs} epochs, synthetic Cora"
        ),
    );
    let ds = synthetic_cora(CoraParams::cora(), seed ^ 0xC04A);
    let cfg = TrainConfig {
        hidden: 16,
        lr: 0.5,
        epochs,
        init_seed: seed ^ 0x1717,
        aggregation: Aggregation::Mean,
    };
    let rows =
        train_inference_matrix(&ds, &cfg, GpuModel::H100, models, seed, &args.executor()).unwrap();
    let mut table = Table::new(["Training", "Inference", "Vermv", "Vc"]);
    for row in rows {
        table.push_row([
            row.train.label().to_string(),
            row.infer.label().to_string(),
            format!("{:.2e} ({:.2e})", row.vermv.mean, row.vermv.std_dev),
            mean_std(row.vc.mean, row.vc.std_dev, 2),
        ]);
    }
    println!("{}", table.render());
    println!(
        "\nNote: the paper's fp32 pipeline reports Vermv at 1e-6; this f64 \
         pipeline shows the same ordering of conditions with magnitudes at \
         the f64 rounding scale (see the fig_f32 note in EXPERIMENTS.md)."
    );
    args.finish();
}
