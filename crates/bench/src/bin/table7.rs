//! Table 7: `Vermv` and `Vc` of GraphSAGE predictions for the four
//! deterministic/non-deterministic training × inference combinations,
//! on the synthetic Cora.
//!
//! Paper scale: 1000 models per condition. Default: 6 (`--models`).
//!
//! `cargo run --release -p fpna-bench --bin table7 [--models 6] [--epochs 10]
//!  [--threads N] [--paper-scale]`
//!
//! Speaks the sweep protocol (`--emit-spec` / `--shard-id …` /
//! `--from-shards …`, see `fpna-sweep`): each global run index is one
//! model per condition, seeded by `(seed, condition, model_index)`, so
//! any process sharding of `0..models` merges to byte-identical
//! output.

use fpna_core::report::{mean_std, Table};
use fpna_gpu_sim::GpuModel;
use fpna_nn::graph::{synthetic_cora, CoraParams, NodeClassification};
use fpna_nn::model::TrainConfig;
use fpna_nn::sage::Aggregation;
use fpna_nn::train::{train_inference_comparisons, Mode, MATRIX_CONDITIONS};
use fpna_sweep::{SweepRows, SweepSpec};

/// Row-set cell name for one (training, inference) condition.
fn cell_name(train: Mode, infer: Mode) -> String {
    format!("{}x{}", train.label(), infer.label())
}

/// Per-model comparison rows for every condition, global model indices
/// in `range` only. The D/D reference is a pure function of the spec,
/// retrained per process — one deterministic run, cheap next to the
/// model sweep it anchors.
fn compute(
    range: std::ops::Range<usize>,
    ds: &NodeClassification,
    cfg: &TrainConfig,
    models: usize,
    seed: u64,
    executor: &fpna_core::executor::RunExecutor,
) -> SweepRows {
    let per_condition =
        train_inference_comparisons(ds, cfg, GpuModel::H100, models, seed, range.clone(), executor)
            .unwrap();
    let mut rows = SweepRows::new();
    for (&(train, infer), comparisons) in MATRIX_CONDITIONS.iter().zip(&per_condition) {
        let cell = cell_name(train, infer);
        for (m, c) in range.clone().zip(comparisons) {
            rows.push(&cell, m, vec![c.vermv, c.vc, c.max_abs_diff, c.len as f64]);
        }
    }
    rows
}

/// Print the table from rows alone — a pure function of the row set,
/// so merged shards render byte-identically to a single process.
fn report(rows: &SweepRows, models: usize, epochs: usize) {
    fpna_bench::banner(
        "Table 7",
        "Vermv and Vc for D/ND training x inference combinations",
        &format!(
            "{models} models per condition (paper: 1000), {epochs} epochs, synthetic Cora"
        ),
    );
    let mut table = Table::new(["Training", "Inference", "Vermv", "Vc"]);
    for (train, infer) in MATRIX_CONDITIONS {
        let cell = cell_name(train, infer);
        let vermv = rows.run_summary(&cell, 0);
        let vc = rows.run_summary(&cell, 1);
        table.push_row([
            train.label().to_string(),
            infer.label().to_string(),
            format!("{:.2e} ({:.2e})", vermv.mean, vermv.std_dev),
            mean_std(vc.mean, vc.std_dev, 2),
        ]);
    }
    println!("{}", table.render());
    println!(
        "\nNote: the paper's fp32 pipeline reports Vermv at 1e-6; this f64 \
         pipeline shows the same ordering of conditions with magnitudes at \
         the f64 rounding scale (see the fig_f32 note in EXPERIMENTS.md)."
    );
}

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let models = args.size("models", 6, 1_000);
    let epochs = fpna_bench::arg_usize("epochs", 10);
    let seed = fpna_bench::arg_u64("seed", 77);

    let spec = SweepSpec::new("table7", models)
        .arg("models", models)
        .arg("epochs", epochs)
        .arg("seed", seed);
    if args.sweep.emit_spec(&spec) {
        return;
    }
    let rows = match args.sweep.compute_range(spec.runs) {
        Some(range) => {
            let ds = synthetic_cora(CoraParams::cora(), seed ^ 0xC04A);
            let cfg = TrainConfig {
                hidden: 16,
                lr: 0.5,
                epochs,
                init_seed: seed ^ 0x1717,
                aggregation: Aggregation::Mean,
            };
            compute(range, &ds, &cfg, models, seed, &args.executor())
        }
        None => args.sweep.load_rows_or_exit(&spec),
    };
    if args.sweep.finish_shard_or_exit(&spec, &rows) {
        args.finish();
        return;
    }
    report(&rows, models, epochs);
    args.finish();
}
