//! §III-C power-law fit: `max|Vs| ≈ β·nᵅ` as a function of the array
//! length `n`, for SPA sums with U(0, 10) and N(0, 1) inputs. The
//! paper finds `α ≈ 0.5` for the uniform distribution and a larger
//! exponent for the normal.
//!
//! `cargo run --release -p fpna-bench --bin fig_powerlaw [--runs 200] [--threads N] [--paper-scale]`

use fpna_core::metrics::scalar_variability;
use fpna_gpu_sim::{GpuDevice, GpuModel, KernelParams, ReduceKernel, ScheduleKind};
use fpna_stats::powerlaw::PowerLawFit;
use fpna_stats::samplers::{Distribution, Sampler};

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let executor = args.executor();
    let runs = args.size("runs", 200, 2_000);
    let arrays = args.size("arrays", 7, 15);
    let seed = fpna_bench::arg_u64("seed", 30);
    fpna_bench::banner(
        "Fig (power law)",
        "max|Vs| ~ beta * n^alpha for SPA (SPTR reference), V100",
        &format!("{runs} runs x {arrays} arrays per size (median of per-array max)"),
    );
    let device = GpuDevice::new(GpuModel::V100);
    let sizes = [10_000usize, 31_623, 100_000, 316_228, 1_000_000];
    for dist in [Distribution::paper_uniform(), Distribution::standard_normal()] {
        let mut points = Vec::new();
        println!("--- xi ~ {} ---", dist.label());
        println!("{:>10}  {:>14}", "n", "max |Vs|");
        for &n in &sizes {
            let nb = (n / 128).max(1) as u32;
            let params = KernelParams::new(64, nb);
            // One array's |Sd| is a lottery (especially for N(0,1),
            // where the sum is a random walk): take the median of the
            // per-array maxima to estimate the size scaling.
            let mut per_array_max = Vec::with_capacity(arrays);
            for a in 0..arrays {
                let mut sampler = Sampler::new(dist, seed ^ (n as u64) ^ ((a as u64) << 32));
                let xs = sampler.sample_vec(n);
                let det = device
                    .reduce(ReduceKernel::Sptr, &xs, params, &ScheduleKind::InOrder)
                    .unwrap()
                    .value;
                let outcomes = device
                    .reduce_runs(
                        ReduceKernel::Spa,
                        &xs,
                        params,
                        &ScheduleKind::Seeded(seed ^ a as u64),
                        runs,
                        &executor,
                    )
                    .unwrap();
                let max_vs = outcomes
                    .iter()
                    .map(|out| scalar_variability(out.value, det).abs())
                    .fold(0.0f64, f64::max);
                per_array_max.push(max_vs);
            }
            let med = fpna_stats::describe::median(&per_array_max);
            let max = per_array_max.iter().copied().fold(0.0f64, f64::max);
            println!("{n:>10}  {med:>14.3e}  (pooled max {max:.3e})");
            points.push((n as f64, med));
        }
        let fit = PowerLawFit::fit(&points);
        println!(
            "fit: max|Vs| = {:.3e} * n^{:.3}   (R^2 = {:.4})\n",
            fit.beta, fit.alpha, fit.r_squared
        );
    }
    args.finish();
}
