//! fp32-accumulation magnitude check: the paper's PyTorch experiments
//! run in float32, so Table 5 / Fig 5 report `Vermv` at the fp32
//! rounding scale (1e-7 … 1e-6). This binary reruns the
//! `scatter_reduce` / `index_add` variability experiment with the
//! fp32-accumulating kernel variants and shows the measured `Vermv`
//! landing in exactly that range — while the f64 kernels show the same
//! phenomenon scaled down by the eps ratio (~1e-9).
//!
//! `cargo run --release -p fpna-bench --bin fig_f32 [--runs 100] [--threads N] [--paper-scale]`

use fpna_core::metrics::ArrayComparison;
use fpna_core::rng::SplitMix64;
use fpna_gpu_sim::GpuModel;
use fpna_tensor::context::GpuContext;
use fpna_tensor::ops::index::index_add;
use fpna_tensor::ops::lowp::{index_add_f32, scatter_reduce_f32};
use fpna_tensor::Tensor;

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let executor = args.executor();
    let runs = args.size("runs", 100, 1_000);
    let seed = fpna_bench::arg_u64("seed", 66);
    let n = 20_000usize;
    let rows = 1_000usize;
    fpna_bench::banner(
        "fp32 magnitude check",
        "Vermv of fp32 vs fp64 accumulation (scatter_reduce / index_add)",
        &format!("{n} contributions onto {rows} rows, {runs} runs"),
    );
    let mut rng = SplitMix64::new(seed);
    let src32: Vec<f32> = (0..n).map(|_| (rng.next_f64() as f32 - 0.5) * 1e3).collect();
    let src64 = Tensor::from_vec(vec![n], src32.iter().map(|&x| x as f64).collect());
    let index: Vec<u32> = (0..n).map(|_| rng.next_below(rows as u64) as u32).collect();
    let dst32 = vec![0.0f32; rows];
    let dst64 = Tensor::zeros(vec![rows]);
    let det = GpuContext::new(GpuModel::H100, seed).with_determinism(Some(true));
    let nd = GpuContext::new(GpuModel::H100, seed).with_determinism(Some(false));

    // fp32 index_add
    let ref32: Vec<f64> = index_add_f32(&det, &dst32, &index, &src32)
        .unwrap()
        .iter()
        .map(|&x| x as f64)
        .collect();
    let vermv32 = executor.map_runs(runs, |r| {
        let out: Vec<f64> = index_add_f32(&nd.for_run(r as u64), &dst32, &index, &src32)
            .unwrap()
            .iter()
            .map(|&x| x as f64)
            .collect();
        ArrayComparison::compare(&ref32, &out).vermv
    });
    // fp64 index_add (same problem)
    let ref64 = index_add(&det, &dst64, &index, &src64).unwrap().into_data();
    let vermv64 = executor.map_runs(runs, |r| {
        let out = index_add(&nd.for_run(r as u64), &dst64, &index, &src64)
            .unwrap()
            .into_data();
        ArrayComparison::compare(&ref64, &out).vermv
    });
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let m32 = mean(&vermv32);
    let m64 = mean(&vermv64);
    println!("index_add      Vermv: fp32 = {m32:.3e}   fp64 = {m64:.3e}   ratio = {:.2e}", m32 / m64);

    // fp32 scatter_reduce (sum and mean), self-referenced
    for mean_mode in [false, true] {
        let first: Vec<f64> = scatter_reduce_f32(&nd.for_run(1_000), &dst32, &index, &src32, mean_mode)
            .unwrap()
            .iter()
            .map(|&x| x as f64)
            .collect();
        let vs = executor.map_runs(runs, |r| {
            let out: Vec<f64> =
                scatter_reduce_f32(&nd.for_run(2_000 + r as u64), &dst32, &index, &src32, mean_mode)
                    .unwrap()
                    .iter()
                    .map(|&x| x as f64)
                    .collect();
            ArrayComparison::compare(&first, &out).vermv
        });
        println!(
            "scatter_reduce({}) Vermv fp32 = {:.3e}",
            if mean_mode { "mean" } else { "sum" },
            mean(&vs)
        );
    }
    println!(
        "\nexpected: fp32 values in the paper's 1e-7..1e-6 band; \
         fp32/fp64 ratio near eps32/eps64 = {:.2e}",
        f32::EPSILON as f64 / f64::EPSILON
    );
    args.finish();
}
