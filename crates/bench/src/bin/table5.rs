//! Table 5: min/max `Vermv` over the hyperparameter sweep of every
//! PyTorch operation documented as non-deterministic.
//!
//! Paper scale: 10 000 runs per configuration on an H100. Default: 40
//! runs per configuration (`--runs`).
//!
//! `cargo run --release -p fpna-bench --bin table5 [--runs 40] [--threads N] [--paper-scale]`

use fpna_core::report::Table;
use fpna_gpu_sim::GpuModel;
use fpna_tensor::sweep::table5_sweep;

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let runs = args.size("runs", 40, 10_000);
    let seed = fpna_bench::arg_u64("seed", 55);
    fpna_bench::banner(
        "Table 5",
        "max and min variability for non-deterministic PyTorch operations",
        &format!("{runs} runs per configuration (paper: 10000), simulated H100"),
    );
    let rows = table5_sweep(GpuModel::H100, runs, seed, &args.executor());
    let mut table = Table::new(["Operation", "min(Vermv)", "max(Vermv)", "configs"]);
    for row in rows {
        table.push_row([
            row.op.to_string(),
            format!("{:.2e}", row.min_vermv),
            format!("{:.2e}", row.max_vermv),
            row.configs.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "\nNote on magnitudes: the paper's PyTorch tensors are float32 \
         (eps = 1.2e-7), so its accumulation-order Vermv lands at 1e-7..1e-6. \
         These kernels accumulate in f64 (eps = 2.2e-16): the same phenomenon \
         appears at 1e-16..1e-15 — the eps ratio. Run `fig_f32` for the \
         fp32-accumulation variants, which land exactly in the paper's range. \
         The write-race ops (index_copy/index_put/scatter) differ by O(1) per \
         raced element in any precision; their Vermv reflects the collision \
         rate of the index tensor instead."
    );
    args.finish();
}
