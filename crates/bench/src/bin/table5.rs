//! Table 5: min/max `Vermv` over the hyperparameter sweep of every
//! PyTorch operation documented as non-deterministic.
//!
//! Paper scale: 10 000 runs per configuration on an H100. Default: 40
//! runs per configuration (`--runs`).
//!
//! `cargo run --release -p fpna-bench --bin table5 [--runs 40] [--threads N] [--paper-scale]`
//!
//! Speaks the sweep protocol (`--emit-spec` / `--shard-id …` /
//! `--from-shards …`, see `fpna-sweep`): every (op, configuration)
//! cell is seeded by global run index, so any process sharding of
//! `0..runs` merges to byte-identical output.

use fpna_core::report::Table;
use fpna_gpu_sim::GpuModel;
use fpna_sweep::{SweepRows, SweepSpec};
use fpna_tensor::sweep::{table5_cells, table5_reduce};

/// Per-run comparison metrics for every (op, configuration) cell,
/// global runs in `range` only. Cell inputs and references are pure
/// functions of the spec, recomputed per process — cheap next to the
/// run sweep they anchor.
fn compute(
    range: std::ops::Range<usize>,
    seed: u64,
    executor: &fpna_core::executor::RunExecutor,
) -> SweepRows {
    let mut rows = SweepRows::new();
    for cell in table5_cells(GpuModel::H100, seed) {
        for (i, c) in cell.comparisons_range(range.clone(), executor) {
            rows.push(
                &cell.name,
                i,
                vec![c.vermv, c.vc, c.max_abs_diff, c.len as f64],
            );
        }
    }
    rows
}

/// Print the table from rows alone — a pure function of the row set,
/// so merged shards render byte-identically to a single process. (The
/// cell walk here only provides op order and row keys; its references
/// are recomputed but never run the sweep.)
fn report(rows: &SweepRows, runs: usize, seed: u64) {
    fpna_bench::banner(
        "Table 5",
        "max and min variability for non-deterministic PyTorch operations",
        &format!("{runs} runs per configuration (paper: 10000), simulated H100"),
    );
    let cells = table5_cells(GpuModel::H100, seed);
    let means: Vec<(&'static str, f64)> = cells
        .iter()
        .map(|cell| (cell.op, rows.variability_report(&cell.name).vermv.mean))
        .collect();
    let mut table = Table::new(["Operation", "min(Vermv)", "max(Vermv)", "configs"]);
    for row in table5_reduce(&means) {
        table.push_row([
            row.op.to_string(),
            format!("{:.2e}", row.min_vermv),
            format!("{:.2e}", row.max_vermv),
            row.configs.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "\nNote on magnitudes: the paper's PyTorch tensors are float32 \
         (eps = 1.2e-7), so its accumulation-order Vermv lands at 1e-7..1e-6. \
         These kernels accumulate in f64 (eps = 2.2e-16): the same phenomenon \
         appears at 1e-16..1e-15 — the eps ratio. Run `fig_f32` for the \
         fp32-accumulation variants, which land exactly in the paper's range. \
         The write-race ops (index_copy/index_put/scatter) differ by O(1) per \
         raced element in any precision; their Vermv reflects the collision \
         rate of the index tensor instead."
    );
}

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let runs = args.size("runs", 40, 10_000);
    let seed = fpna_bench::arg_u64("seed", 55);

    let spec = SweepSpec::new("table5", runs).arg("seed", seed);
    if args.sweep.emit_spec(&spec) {
        return;
    }
    let rows = match args.sweep.compute_range(spec.runs) {
        Some(range) => compute(range, seed, &args.executor()),
        None => args.sweep.load_rows_or_exit(&spec),
    };
    if args.sweep.finish_shard_or_exit(&spec, &rows) {
        args.finish();
        return;
    }
    report(&rows, runs, seed);
    args.finish();
}
