//! Table 6: average kernel runtime for `scatter_reduce` and
//! `index_add` on the simulated H100 (deterministic and
//! non-deterministic) and on the LPU (deterministic by construction).
//!
//! `scatter_reduce` input: 1-D, 1000 elements, R = 0.5; `index_add`
//! input: 1000 × 1000, R = 0.5 — the paper's configurations. The H100
//! deterministic `scatter_reduce` cell is N/A: no deterministic kernel
//! exists (the paper hit a runtime error). LPU times come from
//! actually compiled static programs and are constants.
//!
//! `cargo run --release -p fpna-bench --bin table6`

use fpna_core::report::{mean_std, Table};
use fpna_core::rng::SplitMix64;
use fpna_gpu_sim::profile::{DeviceProfile, GpuModel};
use fpna_lpu_sim::machine::Lpu;
use fpna_lpu_sim::program::{Program, TensorShape};
use fpna_lpu_sim::spec::LpuSpec;
use fpna_tensor::cost::{op_time_us, TimedOp};

fn lpu_scatter_time_us(rows: usize, cols: usize, out_rows: usize, mean: bool, seed: u64) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let index: Vec<u32> = (0..rows)
        .map(|_| rng.next_below(out_rows as u64) as u32)
        .collect();
    let mut counts = vec![0u32; out_rows];
    for &i in &index {
        counts[i as usize] += 1;
    }
    let mut p = Program::new();
    let src = p.input(TensorShape::new(rows, cols));
    let summed = p.scatter_add_rows(src, index, out_rows);
    let out = if mean {
        p.div_row_counts(summed, counts)
    } else {
        summed
    };
    p.output(out);
    Lpu::new(LpuSpec::groq_like())
        .compile(p)
        .expect("valid program")
        .time_us()
}

fn main() {
    // No repeated-run loop (cost-model cells + compiled LPU programs);
    // parsed for the uniform `--threads`/`--paper-scale` flag surface.
    let args = fpna_bench::ExperimentArgs::parse();
    fpna_bench::banner(
        "Table 6",
        "kernel runtime for scatter_reduce / index_add, H100 vs LPU (us)",
        "H100 from the calibrated cost model (mean(std) over simulated \
         measurements); LPU from compiled static programs (no error bar)",
    );
    let h100 = DeviceProfile::new(GpuModel::H100);
    // jittered "measurements" for the GPU mean(std) cells
    let measure = |op: TimedOp, n: usize, det: bool| -> Option<(f64, f64)> {
        let base = op_time_us(&h100, op, n, det)?;
        let samples: Vec<f64> = (0..20)
            .map(|i| {
                fpna_gpu_sim::cost::jittered_time_ns(base * 1e3, h100.timing_jitter * 2.0, i)
                    / 1e3
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
            / (samples.len() - 1) as f64;
        Some((mean, var.sqrt()))
    };
    let fmt = |cell: Option<(f64, f64)>| {
        cell.map(|(m, s)| mean_std(m, s, 1)).unwrap_or_else(|| "N/A".into())
    };

    let mut table = Table::new(["Operation", "Implementation", "H100 (us)", "Groq (us)"]);
    let sr_sum_lpu = lpu_scatter_time_us(1_000, 1, 500, false, 1);
    let sr_mean_lpu = lpu_scatter_time_us(1_000, 1, 500, true, 2);
    let ia_lpu = lpu_scatter_time_us(1_000, 1_000, 500, false, 3);

    table.push_row([
        "scatter_reduce (sum)".into(),
        "D".to_string(),
        fmt(measure(TimedOp::ScatterReduceSum, 1_000, true)),
        format!("{sr_sum_lpu:.1}"),
    ]);
    table.push_row([
        "".into(),
        "ND".to_string(),
        fmt(measure(TimedOp::ScatterReduceSum, 1_000, false)),
        "N/A".into(),
    ]);
    table.push_row([
        "scatter_reduce (mean)".into(),
        "D".to_string(),
        fmt(measure(TimedOp::ScatterReduceMean, 1_000, true)),
        format!("{sr_mean_lpu:.1}"),
    ]);
    table.push_row([
        "".into(),
        "ND".to_string(),
        fmt(measure(TimedOp::ScatterReduceMean, 1_000, false)),
        "N/A".into(),
    ]);
    table.push_row([
        "index_add".into(),
        "D".to_string(),
        fmt(measure(TimedOp::IndexAdd, 1_000_000, true)),
        format!("{ia_lpu:.1}"),
    ]);
    table.push_row([
        "".into(),
        "ND".to_string(),
        fmt(measure(TimedOp::IndexAdd, 1_000_000, false)),
        "N/A".into(),
    ]);
    println!("{}", table.render());
    println!(
        "\nNote: as in the paper, the LPU only exposes deterministic kernels \
         (its ND cells are N/A), and the H100 has no deterministic \
         scatter_reduce (its D cells are N/A)."
    );
    args.finish();
}
