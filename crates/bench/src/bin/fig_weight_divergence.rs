//! §V-B weight-divergence experiment: train N GraphSAGE models with
//! non-deterministic kernels from identical inputs and initial weights
//! and track the `Vermv` of the weight vector per epoch against a
//! deterministic reference run. Reproduces the paper's findings: mean
//! and spread grow with epochs, final weight sets are unique per run,
//! and losses still cluster.
//!
//! `cargo run --release -p fpna-bench --bin fig_weight_divergence [--runs 5] [--epochs 10]
//!  [--threads N] [--paper-scale]`

use fpna_core::report::{mean_std, Table};
use fpna_gpu_sim::GpuModel;
use fpna_nn::graph::{synthetic_cora, CoraParams};
use fpna_nn::model::TrainConfig;
use fpna_nn::sage::Aggregation;
use fpna_nn::train::weight_divergence_experiment;

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let runs = args.size("runs", 5, 1_000);
    let epochs = fpna_bench::arg_usize("epochs", 10);
    let seed = fpna_bench::arg_u64("seed", 99);
    fpna_bench::banner(
        "Fig (weight divergence, §V-B)",
        "weight Vermv vs epoch for ND training, synthetic Cora",
        &format!("{runs} ND runs (paper: 1000), {epochs} epochs"),
    );
    let ds = synthetic_cora(CoraParams::cora(), seed);
    let cfg = TrainConfig {
        hidden: 16,
        lr: 0.5,
        epochs,
        init_seed: seed ^ 0x9999,
        aggregation: Aggregation::Mean,
    };
    let wd = weight_divergence_experiment(&ds, &cfg, GpuModel::H100, runs, seed, &args.executor())
        .unwrap();
    let mut table = Table::new(["epoch", "weight Vermv mean(std)", "weight Vc mean(std)"]);
    for (e, (s, c)) in wd
        .per_epoch_vermv
        .iter()
        .zip(&wd.per_epoch_vc)
        .enumerate()
    {
        table.push_row([
            (e + 1).to_string(),
            format!("{:.3e} ({:.3e})", s.mean, s.std_dev),
            mean_std(c.mean, c.std_dev, 4),
        ]);
    }
    println!("{}", table.render());
    println!();
    println!(
        "final-weight Vc = {:.3} (fraction of weights differing from the deterministic reference)",
        wd.final_vc.mean
    );
    println!(
        "unique final weight sets: {} / {} runs",
        wd.unique_models, wd.runs
    );
    let min = wd.final_losses.iter().copied().fold(f64::INFINITY, f64::min);
    let max = wd
        .final_losses
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    println!("final losses cluster in [{min:.4}, {max:.4}] despite bitwise divergence");
    args.finish();
}
