//! Fig 3: heat maps of the count variability `Vc` per run for the
//! non-deterministic `scatter_reduce` (1-D inputs) and `index_add`
//! (2-D square inputs) as a function of input dimension and reduction
//! ratio R.
//!
//! Paper scale: 1000 runs per cell. Default: 12 runs per cell and a
//! thinned dimension grid (`--runs`).
//!
//! `cargo run --release -p fpna-bench --bin fig3 [--runs 12] [--threads N] [--paper-scale]`

use fpna_gpu_sim::GpuModel;
use fpna_tensor::sweep::{ratio_experiment, RatioOp};

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let executor = args.executor();
    let runs = args.size("runs", 12, 1_000);
    let seed = fpna_bench::arg_u64("seed", 33);
    fpna_bench::banner(
        "Fig 3",
        "heatmaps of Vc vs (input dimension, R)",
        &format!("{runs} runs per cell (paper: 1000)"),
    );
    let ratios: Vec<f64> = (1..=10).map(|r| r as f64 / 10.0).collect();
    let ratio_labels: Vec<String> = ratios.iter().map(|r| format!("{r:.1}")).collect();

    println!("--- scatter_reduce (1-D input) ---");
    let dims_1d = [1_000usize, 2_000, 4_000, 7_000, 10_000];
    let mut grid = Vec::new();
    for &dim in dims_1d.iter().rev() {
        let mut row = Vec::new();
        for &r in &ratios {
            let report = ratio_experiment(
                GpuModel::H100,
                RatioOp::ScatterReduceSum,
                dim,
                r,
                runs,
                seed ^ dim as u64,
                &executor,
            );
            row.push(report.vc.mean);
        }
        grid.push(row);
    }
    let row_labels: Vec<String> = dims_1d.iter().rev().map(|d| d.to_string()).collect();
    println!("{}", fpna_bench::ascii_heatmap(&row_labels, &ratio_labels, &grid));

    println!("--- index_add (2-D square input) ---");
    let dims_2d = [10usize, 40, 100, 200, 400];
    let mut grid = Vec::new();
    for &dim in dims_2d.iter().rev() {
        let mut row = Vec::new();
        for &r in &ratios {
            let report = ratio_experiment(
                GpuModel::H100,
                RatioOp::IndexAdd,
                dim,
                r,
                runs,
                seed ^ (dim as u64) << 8,
                &executor,
            );
            row.push(report.vc.mean);
        }
        grid.push(row);
    }
    let row_labels: Vec<String> = dims_2d.iter().rev().map(|d| d.to_string()).collect();
    println!("{}", fpna_bench::ascii_heatmap(&row_labels, &ratio_labels, &grid));
    println!("columns: reduction ratio R = 0.1 ... 1.0");
    args.finish();
}
