//! Conjugate-gradient divergence experiment (§I/§III): how fast do two
//! runs of the *same* CG solve separate when the inner products are
//! non-deterministic?
//!
//! The paper cites error accumulation approaching 20% of the values
//! after six or seven CG iterations on a massively multithreaded
//! machine (Villa et al.). Our simulated-GPU dot products reproduce the
//! growth *pattern* — near-total bitwise divergence of iterates within
//! a handful of iterations and exponentially growing Vermv — while both
//! runs still converge to the same solution to solver tolerance (the
//! practical saving grace, and the reason this bug class hides so
//! well).
//!
//! `cargo run --release -p fpna-bench --bin fig_cg_divergence [--grid 24]`

use fpna_core::report::Table;
use fpna_gpu_sim::GpuModel;
use fpna_solvers::cg::{divergence_experiment, CgConfig, ReductionMode};
use fpna_solvers::Csr;

fn main() {
    // The experiment is two *coupled* CG trajectories (compared per
    // iteration), so there is no independent-run loop to fan out;
    // parsed for the uniform `--threads`/`--paper-scale` flag surface.
    let args = fpna_bench::ExperimentArgs::parse();
    let grid = args.size("grid", 24, 64);
    let seed = fpna_bench::arg_u64("seed", 11);
    fpna_bench::banner(
        "Fig (CG divergence)",
        "per-iteration divergence of two ND conjugate-gradient runs",
        &format!("2-D Poisson {grid}x{grid}, SPA dot products on simulated V100"),
    );
    let a = Csr::poisson_2d(grid);
    let mut rng = fpna_core::rng::SplitMix64::new(seed);
    let b: Vec<f64> = (0..grid * grid).map(|_| rng.next_f64() - 0.5).collect();
    let cfg = CgConfig {
        max_iters: 120,
        tolerance: 1e-12,
        reduction: ReductionMode::GpuNonDeterministic {
            model: GpuModel::V100,
            seed: 0,
        },
    };
    let d = divergence_experiment(&a, &b, &cfg, (seed, seed ^ 0xD1FF)).unwrap();
    let mut table = Table::new(["iteration", "iterate Vermv", "iterate Vc"]);
    let total = d.vermv_per_iteration.len();
    for k in 0..total {
        // print the first 10 iterations and then every 10th
        if k < 10 || k % 10 == 0 || k + 1 == total {
            table.push_row([
                (k + 1).to_string(),
                format!("{:.3e}", d.vermv_per_iteration[k]),
                format!("{:.3}", d.vc_per_iteration[k]),
            ]);
        }
    }
    println!("{}", table.render());
    println!();
    println!(
        "iteration counts: run A = {}, run B = {} (ND can even change how long CG runs)",
        d.iterations.0, d.iterations.1
    );
    println!(
        "final relative difference between the two solutions: {:.3e} \
         (both converged to tolerance — the divergence lives in the trajectory)",
        d.final_relative_diff
    );
    args.finish();
}
