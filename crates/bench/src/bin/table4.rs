//! Table 4: timing and performance penalty of the parallel-sum
//! implementations on the simulated V100, GH200 and MI250X.
//!
//! 100 sums of 4 194 304 FP64 ~ U(0, 10), kernel parameters per the
//! paper; timings averaged over 10 consecutive simulated runs with the
//! profile's measurement jitter, reported as `mean(std)`; penalty
//! `Ps = 100·(1 − t/min t)`.
//!
//! `cargo run --release -p fpna-bench --bin table4 [--repeats 10] [--threads N] [--paper-scale]`

use fpna_core::report::{mean_std, percent, Table};
use fpna_gpu_sim::cost::performance_penalty;
use fpna_gpu_sim::{GpuDevice, GpuModel, KernelParams, ReduceKernel, ScheduleKind};
use fpna_stats::samplers::{Distribution, Sampler};

const N: usize = 4_194_304;
const SUMS: usize = 100;

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let repeats = args.size("repeats", 10, 100);
    let seed = fpna_bench::arg_u64("seed", 4);
    fpna_bench::banner(
        "Table 4",
        "timing and performance penalty of parallel sum implementations",
        &format!("{SUMS} sums of {N} FP64, timings from the calibrated cost model, {repeats} repeats"),
    );
    let mut sampler = Sampler::new(Distribution::paper_uniform(), seed);
    let xs = sampler.sample_vec(N);

    for model in [GpuModel::V100, GpuModel::Gh200, GpuModel::Mi250x] {
        let device = GpuDevice::new(model);
        // Kernel geometry per the paper's table.
        let geometry: Vec<(ReduceKernel, KernelParams, &str)> = match model {
            GpuModel::V100 => vec![
                (ReduceKernel::Spa, KernelParams::new(512, 128), "(512 x 128)"),
                (ReduceKernel::Sptr, KernelParams::new(512, 128), "(512 x 128)"),
                (ReduceKernel::Tprc, KernelParams::new(512, 128), "(512 x 128)"),
                (ReduceKernel::Cu, KernelParams::new(512, 128), "(unknown)"),
                (ReduceKernel::Ao, KernelParams::new(512, 128), "(fixed parameters)"),
            ],
            GpuModel::Gh200 => vec![
                (ReduceKernel::Spa, KernelParams::new(512, 512), "(512 x 512)"),
                (ReduceKernel::Cu, KernelParams::new(512, 512), "(unknown)"),
                (ReduceKernel::Tprc, KernelParams::new(512, 512), "(512 x 512)"),
                (ReduceKernel::Sptr, KernelParams::new(512, 512), "(512 x 512)"),
                (ReduceKernel::Ao, KernelParams::new(512, 512), "(fixed parameters)"),
            ],
            GpuModel::Mi250x => vec![
                (ReduceKernel::Tprc, KernelParams::new(512, 256), "(512 x 256)"),
                (ReduceKernel::Cu, KernelParams::new(512, 256), "(unknown)"),
                (ReduceKernel::Spa, KernelParams::new(512, 256), "(512 x 256)"),
                (ReduceKernel::Sptr, KernelParams::new(256, 512), "(256 x 512)"),
            ],
            GpuModel::H100 => unreachable!(),
        };
        let mut rows = Vec::new();
        for &(kernel, params, geom) in &geometry {
            let outcomes = device
                .reduce_runs(
                    kernel,
                    &xs,
                    params,
                    &ScheduleKind::Seeded(seed),
                    repeats,
                    &args.executor(),
                )
                .expect("kernel supported on this device");
            let times_ms: Vec<f64> = outcomes
                .iter()
                .map(|out| out.time_ns * SUMS as f64 / 1e6)
                .collect();
            let value = outcomes.last().map(|out| out.value).unwrap_or(f64::NAN);
            let mean = times_ms.iter().sum::<f64>() / repeats as f64;
            let var = times_ms
                .iter()
                .map(|t| (t - mean) * (t - mean))
                .sum::<f64>()
                / (repeats.max(2) - 1) as f64;
            rows.push((kernel, geom, mean, var.sqrt(), value));
        }
        let fastest = rows
            .iter()
            .map(|r| r.2)
            .fold(f64::INFINITY, f64::min);
        let mut table = Table::new([
            "implementation (Nt x Nb)",
            "time for 100 sums (ms)",
            "Ps (%)",
            "deterministic",
        ])
        .with_title(format!("--- {} ---", model.name()));
        for (kernel, geom, mean, std, _) in &rows {
            table.push_row([
                format!("{} {geom}", kernel.name()),
                mean_std(*mean, *std, 3),
                percent(performance_penalty(*mean, fastest)),
                if kernel.is_deterministic() { "yes" } else { "NO" }.to_string(),
            ]);
        }
        println!("{}", table.render());
        if model == GpuModel::Mi250x {
            println!("(AO excluded on Mi250X: FP64 atomicAdd needs an unsafe compiler mode)");
        }
        println!();
    }
    args.finish();
}
