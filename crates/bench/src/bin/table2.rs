//! Table 2: properties of the six parallel-sum implementations.
//!
//! `cargo run -p fpna-bench --bin table2`

use fpna_core::report::Table;
use fpna_gpu_sim::ReduceKernel;

fn main() {
    // No run loop here — parsed for the uniform flag surface
    // (`--threads`/`--paper-scale` are accepted by every binary).
    let args = fpna_bench::ExperimentArgs::parse();
    fpna_bench::banner(
        "Table 2",
        "different implementations of the parallel sum in CUDA",
        "",
    );
    let mut table = Table::new(["Method", "deterministic", "# of kernels", "synchronization"]);
    for k in ReduceKernel::all() {
        table.push_row([
            k.name().to_string(),
            if k.is_deterministic() { "Yes" } else { "No" }.to_string(),
            k.kernel_count()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".to_string()),
            k.sync_method().to_string(),
        ]);
    }
    println!("{}", table.render());
    args.finish();
}
