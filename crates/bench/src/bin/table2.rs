//! Table 2: properties of the six parallel-sum implementations.
//!
//! `cargo run -p fpna-bench --bin table2`
//!
//! Speaks the sweep protocol (`--emit-spec` / `--shard-id …` /
//! `--from-shards …`, see `fpna-sweep`): each global run index is one
//! kernel's property row, so even this static table exercises the full
//! emit-spec / shard / merge path — the protocol's smallest, fastest
//! conformance surface.

use fpna_core::report::Table;
use fpna_gpu_sim::ReduceKernel;
use fpna_sweep::{SweepRows, SweepSpec};

/// Synchronisation methods of Table 2, indexed by the code stored in
/// row column 2.
const SYNC_METHODS: [&str; 3] = ["__threadfence", "stream synchronization", "atomicAdd"];

/// Property rows for the kernels at global run indices in `range`:
/// `[deterministic (0/1), kernel count (-1 for the library call),
/// sync-method code]`.
fn compute(range: std::ops::Range<usize>) -> SweepRows {
    let kernels = ReduceKernel::all();
    let mut rows = SweepRows::new();
    for i in range {
        let k = kernels[i];
        let sync = SYNC_METHODS
            .iter()
            .position(|&s| s == k.sync_method())
            .expect("every kernel's sync method is in SYNC_METHODS") as f64;
        rows.push(
            "kernels",
            i,
            vec![
                if k.is_deterministic() { 1.0 } else { 0.0 },
                k.kernel_count().map(f64::from).unwrap_or(-1.0),
                sync,
            ],
        );
    }
    rows
}

/// Print the table from rows alone (kernel names come from the enum
/// walk, every property cell from the row values) — so merged shards
/// render byte-identically to a single process.
fn report(rows: &SweepRows) {
    fpna_bench::banner(
        "Table 2",
        "different implementations of the parallel sum in CUDA",
        "",
    );
    let mut table = Table::new(["Method", "deterministic", "# of kernels", "synchronization"]);
    for (i, k) in ReduceKernel::all().iter().enumerate() {
        let v = rows
            .values("kernels", i)
            .unwrap_or_else(|| panic!("missing row for kernel {i}"));
        table.push_row([
            k.name().to_string(),
            if v[0] != 0.0 { "Yes" } else { "No" }.to_string(),
            if v[1] < 0.0 { "-".to_string() } else { format!("{}", v[1] as u32) },
            SYNC_METHODS[v[2] as usize].to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    let args = fpna_bench::ExperimentArgs::parse();
    let spec = SweepSpec::new("table2", ReduceKernel::all().len());
    if args.sweep.emit_spec(&spec) {
        return;
    }
    let rows = match args.sweep.compute_range(spec.runs) {
        Some(range) => compute(range),
        None => args.sweep.load_rows_or_exit(&spec),
    };
    if args.sweep.finish_shard_or_exit(&spec, &rows) {
        args.finish();
        return;
    }
    report(&rows);
    args.finish();
}
