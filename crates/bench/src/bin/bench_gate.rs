//! Performance regression gate over the criterion shim's JSON output.
//!
//! `cargo bench -p fpna-bench` makes every suite append per-benchmark
//! rows (`{"id", "median_ns", …}`) under `<target>/bench-json/`. This
//! binary compares those rows against the committed baseline and
//! fails (exit 1) when any benchmark regressed by more than the
//! threshold. Result files whose bench source (`benches/<stem>.rs`)
//! no longer exists are pruned on read, so renamed or deleted suites
//! drop out of both the gate and `--update`d baselines instead of
//! lingering as stale rows.
//!
//! Because the baseline is committed from one machine and CI runs on
//! another, raw nanoseconds are not comparable; the gate therefore
//! normalises by a **machine factor** — the median of all
//! current/baseline ratios. A genuine hot-path regression moves its
//! own ratio far off that median; a uniformly slower machine moves
//! every ratio together and passes. (The flip side: a change that
//! slows *every* benchmark by the same factor is invisible — accepted
//! and documented trade-off for cross-machine stability.)
//!
//! ```text
//! cargo bench -p fpna-bench                      # produce current numbers
//! cargo run --release -p fpna-bench --bin bench_gate             # gate
//! cargo run --release -p fpna-bench --bin bench_gate -- --update # re-baseline
//! ```
//!
//! **Per-suite thresholds.** A benchmark's suite is its id prefix
//! before the first `/`. Suites dominated by the event-driven network
//! simulator (`allreduce_net`) or by whole training epochs (`gnn`)
//! are intrinsically noisier than the tight summation kernels, so
//! they gate at a looser factor ([`SUITE_THRESHOLDS`], applied as a
//! minimum on top of `--threshold` — raising the global threshold
//! raises every gate); everything else uses the default.
//! `--suite-threshold suite=factor` (repeatable) overrides either
//! exactly from the command line.
//!
//! Flags: `--threshold <factor>` (default 1.25 = +25%),
//! `--suite-threshold <suite>=<factor>`, `--baseline <path>`,
//! `--update`.

use fpna_core::report::Table;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Default per-suite regression thresholds for suites that are known
/// to be noisier than the microbenchmark kernels. Everything not
/// listed gates at `--threshold`.
const SUITE_THRESHOLDS: &[(&str, f64)] = &[
    // Event-driven interconnect simulation: run time depends on a
    // binary-heap event order, allocator behaviour and topology size —
    // medians move much more than the flat summation loops.
    ("allreduce_net", 1.6),
    ("allreduce_mem", 1.4),
    // Whole GNN training epochs / inference passes per iteration.
    ("gnn", 1.4),
    // The sweep store rows are filesystem-bound (atomic writes +
    // directory scans), so their medians track disk latency, not code.
    ("sweep", 1.6),
];

/// Suites that run in CI (compile + execute, so they cannot bit-rot)
/// but are **never** timing-gated: their rows are dropped from both
/// the comparison and `--update`, so they can neither regress the gate
/// nor sneak into the committed baseline. Currently the raw
/// event-engine microbenchmarks, which the end-to-end `allreduce_net`
/// suite already covers.
const UNGATED_SUITES: &[&str] = &["net_engine"];

/// The gating threshold for a benchmark id: an explicit
/// `--suite-threshold` override wins outright; otherwise the built-in
/// suite values act as *looser minimums* on top of `--threshold`
/// (`max`), so raising the global threshold raises every gate and
/// never silently tightens a noisy suite below its floor.
/// [`threshold_for`]'s second return: where the applied limit came
/// from, so a failing row can name the exact rule that gated it.
fn threshold_for(id: &str, default: f64, overrides: &[(String, f64)]) -> (f64, String) {
    let suite = id.split('/').next().unwrap_or(id);
    if let Some(&(_, t)) = overrides.iter().find(|(s, _)| s == suite) {
        return (t, format!("--suite-threshold override for suite '{suite}'"));
    }
    match SUITE_THRESHOLDS.iter().find(|&&(s, _)| s == suite) {
        Some(&(_, t)) if t > default => {
            (t, format!("built-in noisy-suite floor for '{suite}'"))
        }
        Some(_) => (default, format!("--threshold (above the '{suite}' suite floor)")),
        None => (default, "--threshold default".to_string()),
    }
}

/// Parse every `--suite-threshold name=factor` occurrence.
fn suite_threshold_overrides() -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        let value = if a == "--suite-threshold" {
            Some(
                args.next()
                    .expect("--suite-threshold expects suite=factor, got nothing"),
            )
        } else {
            a.strip_prefix("--suite-threshold=").map(str::to_string)
        };
        if let Some(v) = value {
            let Some((suite, factor)) = v.split_once('=') else {
                panic!("--suite-threshold expects suite=factor, got {v}");
            };
            let factor: f64 = factor
                .parse()
                .unwrap_or_else(|_| panic!("--suite-threshold factor must be a number, got {factor}"));
            out.push((suite.to_string(), factor));
        }
    }
    out
}

fn main() -> ExitCode {
    let threshold = arg_f64("threshold", 1.25);
    let overrides = suite_threshold_overrides();
    let update = std::env::args().any(|a| a == "--update");
    let baseline_path = arg_string("baseline").map(PathBuf::from).unwrap_or_else(default_baseline_path);

    let current = match read_current() {
        Ok(map) if !map.is_empty() => map,
        Ok(_) => {
            eprintln!("bench_gate: no rows under <target>/bench-json/ — run `cargo bench -p fpna-bench` first");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("bench_gate: cannot read current results: {e}");
            return ExitCode::FAILURE;
        }
    };

    if update {
        let mut out = String::new();
        for (id, ns) in &current {
            out.push_str(&format!("{{\"id\":\"{}\",\"median_ns\":{ns}}}\n", json_escape(id)));
        }
        if let Some(dir) = baseline_path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&baseline_path, out) {
            eprintln!("bench_gate: cannot write baseline {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!("bench_gate: wrote {} entries to {}", current.len(), baseline_path.display());
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_rows(&text),
        Err(e) => {
            eprintln!(
                "bench_gate: cannot read baseline {}: {e}\n  (run with --update to create it)",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let mut ratios: Vec<f64> = Vec::new();
    for (id, &cur) in &current {
        if let Some(&base) = baseline.get(id) {
            if base > 0 {
                ratios.push(cur as f64 / base as f64);
            }
        }
    }
    if ratios.is_empty() {
        eprintln!("bench_gate: baseline and current results share no benchmark ids");
        return ExitCode::FAILURE;
    }
    ratios.sort_by(f64::total_cmp);
    let machine = ratios[ratios.len() / 2];

    let mut table = Table::new(["benchmark", "baseline ns", "current ns", "ratio", "normalized", "limit", "status"])
        .with_title(format!(
            "bench_gate: machine factor {machine:.3} (median ratio), default threshold +{:.0}% (per-suite overrides apply)",
            (threshold - 1.0) * 100.0
        ));
    let mut regressions = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for (id, &cur) in &current {
        let Some(&base) = baseline.get(id) else {
            table.push_row([id.clone(), "-".into(), cur.to_string(), "-".into(), "-".into(), "-".into(), "new (re-baseline)".into()]);
            continue;
        };
        let ratio = cur as f64 / base as f64;
        let normalized = ratio / machine;
        let (limit, limit_source) = threshold_for(id, threshold, &overrides);
        let status = if normalized > limit {
            regressions += 1;
            failures.push(format!(
                "  {id}: normalized {normalized:.3} > limit {limit:.2} ({limit_source}); \
                 raw ratio {ratio:.3} / machine factor {machine:.3}"
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        table.push_row([
            id.clone(),
            base.to_string(),
            cur.to_string(),
            format!("{ratio:.3}"),
            format!("{normalized:.3}"),
            format!("{limit:.2}"),
            status.to_string(),
        ]);
    }
    let mut missing = 0usize;
    for id in baseline.keys() {
        if !current.contains_key(id) {
            missing += 1;
            table.push_row([id.clone(), baseline[id].to_string(), "-".into(), "-".into(), "-".into(), "-".into(), "MISSING".into()]);
        }
    }
    println!("{}", table.render());

    if regressions > 0 || missing > 0 {
        if regressions > 0 {
            eprintln!(
                "bench_gate: {regressions} benchmark(s) regressed past their normalized per-suite \
                 threshold (normalized = raw ratio / machine factor {machine:.3}, the median of \
                 {} current/baseline ratios):",
                ratios.len()
            );
            for f in &failures {
                eprintln!("{f}");
            }
        }
        if missing > 0 {
            eprintln!(
                "bench_gate: {missing} baseline benchmark(s) produced no result — \
                 perf coverage was removed; run all suites, or re-baseline with --update \
                 if the removal is intentional"
            );
        }
        return ExitCode::FAILURE;
    }
    println!("bench_gate: no regressions");
    ExitCode::SUCCESS
}

/// Minimal JSON string escaping, mirroring the criterion shim's
/// writer so `--update` round-trips ids losslessly.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `<manifest>/baselines/bench-baseline.json`; cargo sets
/// `CARGO_MANIFEST_DIR` for `cargo run`, so the committed baseline
/// resolves regardless of the working directory.
fn default_baseline_path() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .unwrap_or_else(|_| "crates/bench".to_string());
    Path::new(&manifest).join("baselines/bench-baseline.json")
}

/// Live bench-suite stems: one per `benches/<stem>.rs` source. The
/// shim names its result file after the bench target, so this is the
/// ground truth for which `<target>/bench-json/` files are current.
/// `None` when the benches directory can't be read (e.g. the gate
/// binary was copied out of the repo) — then no pruning happens.
fn live_suites() -> Option<std::collections::BTreeSet<String>> {
    let manifest =
        std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| "crates/bench".to_string());
    let entries = std::fs::read_dir(Path::new(&manifest).join("benches")).ok()?;
    let mut stems = std::collections::BTreeSet::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "rs") {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                stems.insert(stem.to_string());
            }
        }
    }
    Some(stems)
}

/// All rows from every `<target>/bench-json/*.json` file, minus the
/// deliberately ungated suites — and minus files whose bench source
/// no longer exists. Result files outlive their suites (`cargo bench`
/// never deletes them), so without the prune a renamed or removed
/// suite would keep feeding stale rows into the gate and, worse, into
/// every `--update`d baseline.
fn read_current() -> std::io::Result<BTreeMap<String, u128>> {
    let Some(dir) = target_dir().map(|t| t.join("bench-json")) else {
        return Ok(BTreeMap::new());
    };
    let live = live_suites();
    let mut map = BTreeMap::new();
    for entry in std::fs::read_dir(&dir)? {
        let path = entry?.path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default();
        if let Some(live) = &live {
            if !live.contains(stem) {
                eprintln!(
                    "bench_gate: ignoring stale result file {} (no benches/{stem}.rs)",
                    path.display()
                );
                continue;
            }
        }
        map.extend(parse_rows(&std::fs::read_to_string(&path)?));
    }
    map.retain(|id, _| {
        let suite = id.split('/').next().unwrap_or(id);
        !UNGATED_SUITES.contains(&suite)
    });
    Ok(map)
}

fn target_dir() -> Option<PathBuf> {
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors() {
            if dir.file_name().is_some_and(|n| n == "target") {
                return Some(dir.to_path_buf());
            }
        }
    }
    std::env::var_os("CARGO_TARGET_DIR").map(PathBuf::from)
}

/// Parse the shim's fixed-shape JSON lines: extract `"id"` and
/// `"median_ns"`; rows missing either are skipped.
fn parse_rows(text: &str) -> BTreeMap<String, u128> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let Some(id) = extract_str(line, "id") else { continue };
        let Some(ns) = extract_u128(line, "median_ns") else { continue };
        map.insert(id, ns);
    }
    map
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let hex: String = (&mut chars).take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn extract_u128(line: &str, key: &str) -> Option<u128> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn arg_f64(name: &str, default: f64) -> f64 {
    arg_string(name)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} expects a number, got {v}")))
        .unwrap_or(default)
}

fn arg_string(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(rest) = a.strip_prefix(&format!("{flag}=")) {
            return Some(rest.to_string());
        }
    }
    None
}
