//! # fpna-bench
//!
//! Regenerators for every table and figure in the paper, plus shared
//! experiment plumbing. Each `table*`/`fig*` binary prints the same
//! rows/series the paper reports; `EXPERIMENTS.md` records
//! paper-vs-measured for each.
//!
//! All binaries accept `--runs`, `--arrays`, `--models`, … style
//! overrides; defaults are scaled down from the paper's (e.g. 10 000
//! runs → hundreds) so a full regeneration finishes in minutes on a
//! laptop. Scaling factors are documented per experiment in
//! `EXPERIMENTS.md`.
//!
//! Two flags are shared by every binary (see [`ExperimentArgs`]):
//!
//! * `--threads N` — one shared worker budget: repeated runs fan out
//!   across `N` OS threads through
//!   [`fpna_core::executor::RunExecutor`], and a *single* large run
//!   (one reduction replay, one epoch, one event-driven allreduce)
//!   fans its hot kernels across the same `N` via the intra-run
//!   primitives ([`fpna_core::executor::par_chunk_map`] /
//!   [`fpna_core::executor::par_fill`]); inside a run-fan-out worker
//!   the intra-run layer collapses to serial, so the two never
//!   oversubscribe. Defaults to the `FPNA_THREADS` environment
//!   variable, then 1. Any value produces **bitwise-identical
//!   output**: run seeding, chunk boundaries and result collection are
//!   order-invariant by construction, so `--threads` only changes
//!   wall-clock time.
//! * `--paper-scale` — switch run counts / array counts to the paper's
//!   full experiment sizes (e.g. Table 5's 10 000 runs per
//!   configuration) instead of the seconds-scale defaults. Explicit
//!   size flags (`--runs`, `--arrays`, …) still win.
//!
//! Two more are observability switches (off by default, see
//! [`fpna_obs`]):
//!
//! * `--trace out.json` — record every simulated-clock event (message
//!   hops, background bursts, admission drops, per-rank combines) as a
//!   Chrome trace-event / Perfetto JSON file. Purely simulated time:
//!   the trace bytes are a deterministic function of the experiment
//!   seed, not of the machine or thread count.
//! * `--profile` — enable the event counters and wall-clock phase
//!   profiler; the report lands in `target/obs/<bin>.profile.json`.
//!
//! Both report to **stderr** only, so stdout stays byte-identical with
//! and without them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Write as _;
use std::path::PathBuf;

use fpna_core::executor::RunExecutor;
use fpna_sweep::SweepMode;

/// Shared per-binary experiment arguments: worker threads, run
/// batching, the paper-scale preset switch, and the observability
/// switches.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// Worker thread count for repeated-run loops (`--threads`,
    /// default `FPNA_THREADS`, default 1).
    pub threads: usize,
    /// Run indices each worker claims per shared-counter pull
    /// (`--run-batch`, default 1) — the work-stealing chunk-size knob
    /// for sweeps of very short runs. Bitwise invariant; scheduling
    /// only.
    pub run_batch: usize,
    /// `--paper-scale`: use the paper's full experiment sizes.
    pub paper_scale: bool,
    /// `--trace out.json`: record a simulated-clock Chrome/Perfetto
    /// trace and write it here on [`ExperimentArgs::finish`].
    pub trace: Option<PathBuf>,
    /// `--profile`: enable counters + wall-clock phase profiling; the
    /// JSON report lands in `target/obs/<bin>.profile.json`.
    pub profile: bool,
    /// Which [`SweepMode`] the process runs in (`--emit-spec`,
    /// `--shard-id …`, `--from-shards …`, or plain Full mode). Drives
    /// the `sweep` coordinator's process sharding; in shard mode the
    /// observability outputs are namespaced per shard (see
    /// [`ExperimentArgs::finish`]) so concurrent shard processes of
    /// the same binary never clobber each other under `target/obs/`.
    pub sweep: SweepMode,
}

impl ExperimentArgs {
    /// Parse `--threads` / `--run-batch` / `--paper-scale` from the
    /// process arguments.
    ///
    /// # Panics
    ///
    /// Panics when `--threads` or `--run-batch` is given a
    /// non-positive or unparsable value.
    pub fn parse() -> Self {
        let threads = arg_usize("threads", RunExecutor::from_env().threads);
        assert!(threads > 0, "--threads expects a positive integer");
        let run_batch = arg_usize("run-batch", 1);
        assert!(run_batch > 0, "--run-batch expects a positive integer");
        // One flag, one budget: the same worker count drives the
        // repeated-run fan-out (RunExecutor) and the intra-run kernel
        // primitives; nesting collapses to serial inside workers, so
        // the two never multiply.
        fpna_core::executor::set_intra_threads(threads);
        let trace = arg_string("trace").map(PathBuf::from);
        if trace.is_some() {
            fpna_obs::trace::start();
        }
        let profile = arg_flag("profile");
        if profile {
            fpna_obs::counters::reset();
            fpna_obs::counters::set_enabled(true);
            fpna_obs::profile::reset();
            fpna_obs::profile::set_enabled(true);
        }
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let sweep = SweepMode::from_args_or_exit(&argv);
        if profile {
            if let Some(id) = sweep.shard_id() {
                fpna_obs::profile::set_context(Some(format!("shard-{id}")));
            }
        }
        ExperimentArgs {
            threads,
            run_batch,
            paper_scale: arg_flag("paper-scale"),
            trace,
            profile,
            sweep,
        }
    }

    /// `true` when this process prints a report on stdout (Full or
    /// merge mode). Shard and `--emit-spec` processes must keep stdout
    /// silent apart from the protocol payload, so binaries guard every
    /// `println!` on this.
    pub fn reporting(&self) -> bool {
        self.sweep.reports()
    }

    /// Flush the observability outputs requested on the command line:
    /// the Chrome/Perfetto trace to `--trace`'s path and the profile
    /// report to `target/obs/<bin>.profile.json`. Call once at the end
    /// of `main` (before any early `exit`). All messaging goes to
    /// stderr so stdout stays byte-identical with and without the
    /// observability flags.
    /// In shard mode, reports additionally carry a `.shard-<id>`
    /// suffix (`target/obs/<bin>.shard-<id>.profile.json`, and
    /// `--trace out.json` becomes `out.shard-<id>.json`) so concurrent
    /// shard processes of the same binary cannot overwrite each
    /// other's files.
    pub fn finish(&self) {
        if let Some(path) = &self.trace {
            let path = self.shard_qualified(path);
            match fpna_obs::trace::write_json(&path) {
                Ok(n) => eprintln!("[obs] trace: {n} events -> {}", path.display()),
                Err(e) => eprintln!("[obs] trace: FAILED writing {}: {e}", path.display()),
            }
            fpna_obs::trace::stop();
        }
        if self.profile {
            let name = match self.sweep.shard_id() {
                Some(id) => format!("{}.shard-{id}.profile.json", bin_name()),
                None => format!("{}.profile.json", bin_name()),
            };
            let path = PathBuf::from("target/obs").join(name);
            match fpna_obs::profile::write_report(&path) {
                Ok(()) => eprintln!("[obs] profile report -> {}", path.display()),
                Err(e) => eprintln!("[obs] profile: FAILED writing {}: {e}", path.display()),
            }
        }
    }

    /// Insert `.shard-<id>` before `path`'s extension when running as
    /// a shard; the unchanged path otherwise.
    fn shard_qualified(&self, path: &std::path::Path) -> PathBuf {
        let Some(id) = self.sweep.shard_id() else {
            return path.to_path_buf();
        };
        match path.extension().and_then(|e| e.to_str()) {
            Some(ext) => path.with_extension(format!("shard-{id}.{ext}")),
            None => path.with_extension(format!("shard-{id}")),
        }
    }

    /// The executor running this binary's repeated-run loops.
    pub fn executor(&self) -> RunExecutor {
        RunExecutor::new(self.threads).with_batch(self.run_batch)
    }

    /// An experiment size: the explicit `--name` flag when present,
    /// else the paper's size under `--paper-scale`, else the
    /// seconds-scale default.
    pub fn size(&self, name: &str, default: usize, paper: usize) -> usize {
        match arg_value(name) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v}")),
            None if self.paper_scale => paper,
            None => default,
        }
    }

    /// The scale label for banners: which preset is active.
    pub fn scale_label(&self) -> &'static str {
        if self.paper_scale {
            "paper-scale"
        } else {
            "scaled-down default"
        }
    }
}

/// The current binary's file stem (`table9`, `fig1`, …), for naming
/// per-binary artifacts such as profile reports.
fn bin_name() -> String {
    std::env::args()
        .next()
        .as_deref()
        .and_then(|a| std::path::Path::new(a).file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "experiment".to_string())
}

/// `true` when `--name` appears as a bare flag in the process
/// arguments.
pub fn arg_flag(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}

/// Parse `--name value` from the process arguments, with a default.
pub fn arg_usize(name: &str, default: usize) -> usize {
    arg_value(name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v}"))
        })
        .unwrap_or(default)
}

/// Parse `--name value` as u64.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    arg_value(name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v}"))
        })
        .unwrap_or(default)
}

/// Parse `--name value` as a raw string (e.g. for comma-separated
/// lists a binary splits itself).
pub fn arg_string(name: &str) -> Option<String> {
    arg_value(name)
}

fn arg_value(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(rest) = a.strip_prefix(&format!("{flag}=")) {
            return Some(rest.to_string());
        }
    }
    None
}

/// Print the standard experiment banner.
pub fn banner(id: &str, paper_ref: &str, scaling_note: &str) {
    println!("=== {id} — {paper_ref} ===");
    if !scaling_note.is_empty() {
        println!("({scaling_note})");
    }
    println!();
}

/// Render a sparse ASCII heat map of `values[row][col]` with row/col
/// labels — the Fig 3 output format.
pub fn ascii_heatmap(row_labels: &[String], col_labels: &[String], values: &[Vec<f64>]) -> String {
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let max = values
        .iter()
        .flatten()
        .copied()
        .fold(f64::MIN_POSITIVE, f64::max);
    let mut out = String::new();
    let label_w = row_labels.iter().map(|l| l.len()).max().unwrap_or(0);
    for (r, row) in values.iter().enumerate() {
        let _ = write!(out, "{:>label_w$} |", row_labels[r]);
        for &v in row {
            let idx = ((v / max) * (shades.len() - 1) as f64).round() as usize;
            let c = shades[idx.min(shades.len() - 1)];
            let _ = write!(out, " {c}{c}");
        }
        let _ = writeln!(out, " |");
    }
    let _ = write!(out, "{:>label_w$}  ", "");
    for l in col_labels {
        let _ = write!(out, " {:>2}", &l[..l.len().min(2)]);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "(shade ∝ value; max = {max:.3e})");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_renders() {
        let rows = vec!["a".to_string(), "bb".to_string()];
        let cols = vec!["1".to_string(), "2".to_string()];
        let vals = vec![vec![0.0, 0.5], vec![1.0, 0.25]];
        let s = ascii_heatmap(&rows, &cols, &vals);
        assert!(s.contains('@'), "max cell should be darkest: {s}");
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn args_fall_back_to_defaults() {
        assert_eq!(arg_usize("definitely-not-passed", 42), 42);
        assert_eq!(arg_u64("also-not-passed", 7), 7);
        assert!(!arg_flag("definitely-not-passed"));
    }

    #[test]
    fn experiment_args_pick_preset_sizes() {
        let scaled = ExperimentArgs {
            threads: 1,
            run_batch: 1,
            paper_scale: false,
            trace: None,
            profile: false,
            sweep: SweepMode::Full,
        };
        assert_eq!(scaled.size("not-a-flag", 40, 10_000), 40);
        assert_eq!(scaled.scale_label(), "scaled-down default");
        assert!(scaled.reporting());
        let paper = ExperimentArgs {
            threads: 4,
            run_batch: 8,
            paper_scale: true,
            trace: None,
            profile: false,
            sweep: SweepMode::Full,
        };
        assert_eq!(paper.size("not-a-flag", 40, 10_000), 10_000);
        assert_eq!(paper.executor().threads, 4);
        assert_eq!(paper.executor().batch, 8);
        assert_eq!(paper.scale_label(), "paper-scale");
    }

    #[test]
    fn shard_mode_namespaces_obs_outputs() {
        let shard = ExperimentArgs {
            threads: 1,
            run_batch: 1,
            paper_scale: false,
            trace: None,
            profile: false,
            sweep: SweepMode::Shard { id: 3, start: 0, end: 5, out: None },
        };
        assert!(!shard.reporting());
        assert_eq!(
            shard.shard_qualified(std::path::Path::new("target/obs/t9.json")),
            PathBuf::from("target/obs/t9.shard-3.json")
        );
        assert_eq!(
            shard.shard_qualified(std::path::Path::new("trace")),
            PathBuf::from("trace.shard-3")
        );
        let full = ExperimentArgs { sweep: SweepMode::Full, ..shard };
        assert_eq!(
            full.shard_qualified(std::path::Path::new("target/obs/t9.json")),
            PathBuf::from("target/obs/t9.json")
        );
    }
}
