//! Golden snapshot of `table9` stdout at a fixed seed and clamped
//! sizes, covering the multi-tenant load axis end to end.
//!
//! The entire table — every simulated-time column included — is a pure
//! function of the flags: the fabric, tenants, and route draws are all
//! seeded, and run fan-out is order-invariant. So the full stdout can
//! be pinned byte for byte, and must not depend on the worker-thread
//! count. Refresh after an intentional output change with:
//!
//! ```text
//! FPNA_BLESS=1 cargo test -p fpna-bench --test golden_table9
//! ```

use std::path::PathBuf;
use std::process::Command;

const ARGS: &[&str] = &["--runs", "4", "--len", "96", "--load", "0,0.5", "--seed", "9"];

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/table9.txt")
}

fn run_table9(threads: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_table9"))
        .args(ARGS)
        .args(["--threads", threads])
        // The golden must not inherit a CI thread matrix.
        .env_remove("FPNA_THREADS")
        .output()
        .expect("spawn table9");
    assert!(
        out.status.success(),
        "table9 self-checks failed (threads={threads}):\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8(out.stdout).expect("table9 emits UTF-8")
}

#[test]
fn table9_stdout_matches_the_committed_golden() {
    let serial = run_table9("1");
    let threaded = run_table9("2");
    assert_eq!(
        serial, threaded,
        "table9 stdout must be identical at any worker-thread count"
    );
    let path = golden_path();
    if std::env::var_os("FPNA_BLESS").is_some() {
        std::fs::write(&path, &serial).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); bless with FPNA_BLESS=1", path.display()));
    assert_eq!(
        serial,
        want,
        "table9 stdout drifted from {}; if intentional, re-bless with FPNA_BLESS=1",
        path.display()
    );
}
