//! Shard ≡ single-process, at the real-binary level: drive the
//! protocol-speaking binaries through the raw sweep protocol
//! (`--emit-spec`, one process per `--shard-id`, `--from-shards`
//! merge) and require the merged stdout to be byte-identical to a
//! plain run. The
//! coordinator's own orchestration (caching, resume, stale-shard
//! pruning) is covered in `fpna-sweep`'s tests; this one pins the
//! contract the experiment binaries themselves export.

use std::path::{Path, PathBuf};
use std::process::Command;

use fpna_sweep::{shard_assignments, SweepSpec, SweepStore};

fn run(bin: &str, args: &[&str]) -> std::process::Output {
    Command::new(bin)
        .args(args)
        // A CI thread matrix must not leak into the comparison.
        .env_remove("FPNA_THREADS")
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"))
}

fn stdout_of(bin: &str, args: &[&str]) -> String {
    let out = run(bin, args);
    assert!(
        out.status.success(),
        "{bin} {args:?} failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8(out.stdout).expect("experiment binaries emit UTF-8")
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fpna-bench-shards-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Shard `bin` into `shards` processes via its own emitted spec, merge
/// with `--from-shards`, and return the merged stdout.
fn sharded_stdout(bin: &str, args: &[&str], shards: usize, store_root: &Path) -> String {
    let mut emit = args.to_vec();
    emit.push("--emit-spec");
    let spec = SweepSpec::from_json_str(&stdout_of(bin, &emit))
        .unwrap_or_else(|e| panic!("{bin} --emit-spec must print its canonical spec: {e}"));
    let store = SweepStore::new(store_root);
    for a in shard_assignments(&spec, shards) {
        let shard_out = store.shard_path(&spec, a.shard_id);
        let mut argv = args.to_vec();
        let (id, start, end) = (
            a.shard_id.to_string(),
            a.run_range.start.to_string(),
            a.run_range.end.to_string(),
        );
        argv.extend(["--shard-id", &id, "--shard-start", &start, "--shard-end", &end]);
        let out_str = shard_out.to_string_lossy().into_owned();
        argv.extend(["--shard-out", &out_str]);
        let shard_stdout = stdout_of(bin, &argv);
        assert!(
            shard_stdout.is_empty(),
            "shard processes must stay silent on stdout, got: {shard_stdout}"
        );
        assert!(shard_out.is_file(), "missing shard file {}", shard_out.display());
    }
    let mut merge = args.to_vec();
    let root = store_root.to_string_lossy().into_owned();
    merge.extend(["--from-shards", &root]);
    stdout_of(bin, &merge)
}

#[test]
fn table5_shards_merge_to_the_single_process_bytes() {
    let args = &["--runs", "6", "--seed", "77"];
    let single = stdout_of(env!("CARGO_BIN_EXE_table5"), args);
    let store = temp_store("t5");
    for shards in [2usize, 4] {
        let merged = sharded_stdout(env!("CARGO_BIN_EXE_table5"), args, shards, &store);
        assert_eq!(single, merged, "table5 diverged at {shards} shards");
        std::fs::remove_dir_all(&store).expect("clear store between shard counts");
    }
}

#[test]
fn table9_shards_merge_to_the_single_process_bytes() {
    // The golden_table9 flag set: the merge path must reproduce the
    // pinned stdout — acceptance checks, exit code, and all.
    let args = &["--runs", "4", "--len", "96", "--load", "0,0.5", "--seed", "9"];
    let single = stdout_of(env!("CARGO_BIN_EXE_table9"), args);
    let store = temp_store("t9");
    let merged = sharded_stdout(env!("CARGO_BIN_EXE_table9"), args, 3, &store);
    assert_eq!(single, merged, "table9 diverged at 3 shards");
    std::fs::remove_dir_all(&store).expect("clear store");
}

#[test]
fn table2_shards_merge_to_the_single_process_bytes() {
    // Static table, 6 kernel rows: the protocol's smallest conformance
    // surface — including the one-run-per-shard degenerate partition.
    let args: &[&str] = &[];
    let single = stdout_of(env!("CARGO_BIN_EXE_table2"), args);
    let store = temp_store("t2");
    for shards in [2usize, 6] {
        let merged = sharded_stdout(env!("CARGO_BIN_EXE_table2"), args, shards, &store);
        assert_eq!(single, merged, "table2 diverged at {shards} shards");
        std::fs::remove_dir_all(&store).expect("clear store between shard counts");
    }
}

#[test]
fn table7_shards_merge_to_the_single_process_bytes() {
    let args = &["--models", "4", "--epochs", "3", "--seed", "77"];
    let single = stdout_of(env!("CARGO_BIN_EXE_table7"), args);
    let store = temp_store("t7");
    let merged = sharded_stdout(env!("CARGO_BIN_EXE_table7"), args, 2, &store);
    assert_eq!(single, merged, "table7 diverged at 2 shards");
    std::fs::remove_dir_all(&store).expect("clear store");
}

#[test]
fn fig1_shards_merge_to_the_single_process_bytes() {
    let args = &["--arrays", "2", "--runs", "6", "--seed", "10"];
    let single = stdout_of(env!("CARGO_BIN_EXE_fig1"), args);
    let store = temp_store("f1");
    let merged = sharded_stdout(env!("CARGO_BIN_EXE_fig1"), args, 2, &store);
    assert_eq!(single, merged, "fig1 diverged at 2 shards");
    std::fs::remove_dir_all(&store).expect("clear store");
}
